// twostep_cli — command-line front end to the library.
//
//   twostep_cli bounds
//       Print the tight-bound table for e = 1..4, f = e..5.
//
//   twostep_cli run --protocol task|object|paxos|fastpaxos --e E --f F
//              [--n N] [--model sync|ps|wan] [--seed S]
//              [--crash P[,P...]] [--propose P=V[,P=V...]]
//              [--trace] [--trace-out FILE] [--metrics-out FILE]
//       Execute one consensus instance on the simulator and report the
//       per-process decisions, two-step verdicts and safety.
//       --trace        print the structured event stream (obs::RunTracer)
//                      after the run, one "[t=..] p.. ..." line per event.
//       --trace-out F  write the same events as Chrome trace-event JSON;
//                      load F in ui.perfetto.dev or chrome://tracing to see
//                      each process as a track and ballots as spans.
//       --metrics-out F  write the run's MetricsRegistry (message counts by
//                      type, fast/slow decisions, ballots, selection-branch
//                      frequencies, decision-latency percentiles) as JSON.
//
//   twostep_cli attack --target task|object|fastpaxos --e E --f F
//       Replay the Appendix B lower-bound construction below the target's
//       bound and print the round-by-round narrative.
//
//   twostep_cli fuzz --e E --f F [--mode task|object] [--n N]
//              [--policy paper|noexcl|notie|nothresh]
//              [--traces N] [--seed S] [--jobs N]
//              [--drop K] [--dup K] [--partition K]
//       Hunt for Agreement violations with random schedules.
//       --jobs N       shard the traces across N worker threads (0 = all
//                      hardware threads).  Results are deterministic: the
//                      reported counts and violating schedule are identical
//                      for every N.
//       --drop/--dup/--partition K   give the adversary a budget of up to K
//                      injected message drops / duplications / momentary
//                      one-process partitions per trace, explored as
//                      explicit schedule actions (replayable, jobs-stable).
//
//   twostep_cli chaos --protocol task|object|paxos|fastpaxos --e E --f F
//              [--n N] [--model sync|ps|wan] [--runs N] [--seed S]
//              [--drop R] [--dup R] [--reorder R] [--partition T1-T2]
//              [--raw]
//       Run N seeded consensus instances under a deterministic FaultPlan
//       (drop/duplicate each message with probability R, delay-reorder with
//       probability R, partition the lower half of the cluster during
//       [T1, T2)) with a ReliableChannel restoring reliable links, and
//       report decision/fast-path rates, latency and retransmission stats.
//       --raw disables the ReliableChannel (protocols face the lossy link
//       directly; safety must still hold, liveness may not).
//       Exit status 2 if any run violates safety.  Runs are byte-identical
//       for a fixed --seed.
//
//   twostep_cli sweep [--emax E] [--fmax F] [--jobs N] [--metrics-out FILE]
//       Run every applicable Appendix B construction over the (e, f) grid,
//       both below and at each bound, and print one row per construction.
//       Exit status 2 if any row deviates from the paper's prediction
//       (violation below the bound, defense at it).  --jobs parallelizes
//       the grid with deterministic, order-stable output.
//
//   twostep_cli localcluster [-n N] [-e E] [-f F]
//              [--protocol rsm|epaxos|task|object|fastpaxos] [--commands K]
//              [--delta-us D] [--value V] [--metrics-out FILE]
//              [--trace-dir DIR] [--stats-interval-ms T]
//              [--storage-dir DIR] [--no-fsync] [--group-commit-us G]
//              [--snapshot-every K] [--wal-segment-bytes B]
//              [--geo SPEC] [--geo-scale S] [--geo-placement P]
//              [--recovery-timeout-us T]
//       Spawn an n-replica live cluster on loopback (real TCP, one event
//       loop thread per replica — the same node::Runtime a multi-process
//       deployment uses), drive it with a client workload and check
//       safety.  For rsm (the default) a closed-loop client issues K
//       commands (default 1000) to replica 0 and every replica's applied
//       log must be prefix-consistent; for the single-shot protocols one
//       client per replica proposes the same --value and all replies must
//       agree.  Prints client-observed latency percentiles and the
//       fast/slow decision split.  Exit status 2 on a safety violation,
//       1 if commands were lost or the mesh never formed.
//       --trace-dir DIR  give every replica and the client a flight
//                      recorder (wire-propagated request tracing) and dump
//                      one <process>.jsonl span file per process into DIR
//                      after the run — the inputs `tracemerge` consumes.
//       --stats-interval-ms T  arm each replica's periodic in-node metrics
//                      snapshotter (see the `stats` command).
//       --protocol epaxos  host the leaderless EPaxos RSM behind the same
//                      runtime: the closed-loop client proxies through
//                      replica 0, commands all interfere (total execution
//                      order), and the same prefix-consistency audit runs
//                      over the execution logs.  --recovery-timeout-us T
//                      (default 5x delta) arms explicit-prepare recovery of
//                      instances stranded by a crashed command leader.
//       --geo SPEC     emulate a multi-region deployment on the peer links:
//                      SPEC is a preset (nine-regions, us-eu, global) or a
//                      matrix file (see src/geo/latency_matrix.hpp).  Every
//                      non-dropped peer frame from replica p to q gains the
//                      matrix's one-way delay between their regions plus
//                      seeded per-link jitter.  --geo-scale S multiplies
//                      all delays (0.01 for smoke runs); --geo-placement
//                      maps replicas to regions (default round-robin).
//
//   twostep_cli chaossoak [-n N] [-e E] [-f F] [--protocol rsm|epaxos]
//              [--commands K] [--seed S]
//              [--kill-period-ms P] [--down-ms D] [--soak-ms T] [--think-us T]
//              [--drop R] [--dup R] [--delay R] [--delay-max-us U]
//              [--partition K] [--partition-ms D] [--failover] [--reconfig]
//              [--delta-us D] [--storage-dir DIR] [--no-fsync]
//              [--group-commit-us G] [--snapshot-every K]
//              [--wal-segment-bytes B] [--metrics-out FILE]
//              [--geo SPEC] [--geo-scale S] [--geo-placement P]
//       Crash-recovery soak: an n-replica RSM (or EPaxos, with
//       --protocol epaxos) cluster with per-replica
//       write-ahead logs, a failover client driving K closed-loop commands
//       across the whole replica list, a seeded crash schedule killing and
//       restarting up to f replicas at a time (same port, same WAL — every
//       restart recovers its promises and votes from disk), and an optional
//       chaos stage on every peer link (seeded drop/duplicate/delay).
//       After the workload the run checks the live-cluster invariants:
//       pairwise applied-log prefix consistency (agreement), every applied
//       command drawn from the submitted set (validity), and every
//       acknowledged command present in the longest applied log
//       (durability — the WAL discipline is what makes this hold across
//       kills).  Client semantics are at-least-once across a proxy crash,
//       so duplicate commands in the log are tolerated; divergence is not.
//       Prints throughput, failover/timeout counts and the recover.*
//       counters proving restarted replicas rejoined from their WAL.
//       --metrics-out additionally captures the recovery-cycle and
//       failover-latency histograms (recover.cycle_us,
//       recover.downtime_us, client.failover_rtt_us).
//       --partition K  inject K seeded blackhole windows, each severing one
//                      random DIRECTED link for --partition-ms (default
//                      max(down-ms, 200)) somewhere inside the soak —
//                      asymmetric loss, the case a symmetric partition
//                      never exercises.
//       --failover     arm the Ω failure detector on every replica
//                      (heartbeats + jittered suspicion + handover; see
//                      `serve`), so a killed leader costs one bounded
//                      suspicion window instead of a 5Δ ballot race.
//       --reconfig     (rsm only) replace a replica mid-soak: at soak/3 a
//                      brand-new joiner (id n) is added through the config
//                      log and healed by snapshot state transfer; at
//                      2*soak/3 replica n-1 is removed.  The same audit
//                      runs across the change (the joiner must catch up to
//                      the founders' applied head; the removed replica's
//                      frozen log must stay a consistent prefix).  Pace
//                      with --think-us so the workload spans both windows.
//       Exit status 2 on any invariant violation, 1 on lost/rejected
//       commands, a mesh failure, or a --reconfig run whose join/remove
//       windows never fired or whose joiner never healed.
//
//   twostep_cli loadgen [-n N] [--rate R] [--sessions S] [--connections C]
//              [--duration-ms T] [--drain-ms T] [--fixed] [--spread]
//              [--batch-max B] [--batch-linger-us L] [--pipeline-window W]
//              [--group-commit-us G] [--delta-us D] [--seed S]
//              [--storage-dir DIR] [--no-fsync] [--snapshot-every K]
//              [--wal-segment-bytes B] [--metrics-out FILE]
//              [--connect H:P,H:P,...]
//       Open-loop saturation workload (node::OpenLoopLoadgen): S logical
//       sessions over C shared connections offer R commands/s for T ms —
//       Poisson arrivals by default, deterministic spacing with --fixed —
//       and report offered vs achieved rate plus the RTT distribution.
//       Without --connect the command spawns an n-replica local RSM
//       cluster first (batching / slot pipelining / group-commit WAL
//       knobs forwarded to every replica) and, after the drain, audits
//       the chaossoak invariants over the applied logs: pairwise prefix
//       agreement, every applied payload drawn from the issued set
//       (validity), and every acknowledged payload present in the longest
//       log (durability).  Exit 2 on any invariant violation, 1 on lost
//       or rejected commands or a mesh failure.  With --connect the
//       workload drives an already-running cluster and only the loadgen
//       report is produced (the first endpoint is the proxy; --spread
//       round-robins connections across all of them).
//
//   twostep_cli serve --id I --peers H:P,H:P,... [--protocol ...]
//              [--e E] [--f F] [--delta-us D] [--metrics-out FILE]
//              [--stats-interval-ms T] [--storage-dir DIR] [--no-fsync]
//              [--group-commit-us G] [--snapshot-every K]
//              [--wal-segment-bytes B] [--listen H:P] [--failover]
//              [--failover-period-us P] [--failover-timeout-min-us T]
//              [--failover-timeout-max-us T] [--transfer-retry-min-us T]
//              [--transfer-retry-max-us T]
//       Host replica I of a real multi-process cluster.  --peers lists
//       every replica's listen endpoint in id order (entry I is ours).
//       --storage-dir persists the replica's WAL + snapshots under
//       DIR/replica-I (recovered on restart); --snapshot-every K arms
//       checkpoint-and-truncate every K logged records (rsm only).
//       Runs until SIGINT/SIGTERM, then shuts down cleanly and optionally
//       writes the node's metrics.
//       --id N --listen H:P  (N == the peer count) start as a JOINER: a
//                      brand-new replica outside the listed universe that
//                      dials the members and waits for a `join` command to
//                      admit it, at which point the members dial back and
//                      heal it by snapshot state transfer (rsm only).
//       --failover     arm the Ω failure detector: every replica heartbeats
//                      every --failover-period-us (default 50 ms), suspects
//                      a peer unheard for a jittered timeout drawn from
//                      [--failover-timeout-min-us, --failover-timeout-max-us]
//                      (defaults 250 ms / 2 s; doubled per false suspicion),
//                      and elects the lowest unsuspected member, which
//                      announces itself with a handover frame.  The elected
//                      leader drives new ballots for stranded slots, so a
//                      killed leader costs one bounded suspicion window.
//       --transfer-retry-min-us / --transfer-retry-max-us  snapshot state
//                      transfer redial backoff bounds (jittered exponential;
//                      defaults 300 ms / 2 s).
//
//   twostep_cli join <host:port> --replica I --address H:P [--timeout-ms T]
//       Admit replica I (serving as a joiner at H:P) into the cluster:
//       submits a kAdd config command through the live member <host:port>
//       and waits for the change to COMMIT in the replicated log.  Exit 0
//       only on commit; nonzero on timeout, rejection, or connect failure.
//
//   twostep_cli leave <host:port> --replica I [--timeout-ms T]
//       Retire replica I: submits the kRemove config command through
//       <host:port> and waits for the commit.  The survivors treat I as
//       permanently crashed (its slot in the universe is never reused).
//
//   twostep_cli client --connect H:P [--commands K] [--value V]
//       Closed-loop client against a running replica: K sequential
//       commands, RTT percentiles on exit plus one machine-readable
//       "workload: {...}" JSON line (counters + rtt quantiles).  Non-zero
//       if any command was rejected or lost.
//
//   twostep_cli tracemerge <spans.jsonl>... [--out merged.json]
//       Merge per-process flight-recorder span dumps (the files a
//       localcluster --trace-dir run writes) into one Chrome-trace JSON
//       for chrome://tracing or ui.perfetto.dev, with flow arrows across
//       process boundaries.  Exit 1 on any malformed input line.
//
//   twostep_cli stats <host:port> [--timeout-ms T]
//       Scrape a running replica: one kStatsRequest frame, print the
//       node's twostep-stats/1 JSON snapshot (uptime counters, transport
//       traffic, every metric histogram) to stdout.  Works against any
//       live node — serve, localcluster or a bench cluster — with no
//       handshake.  --timeout-ms (default 5000) bounds the dial AND the
//       reply wait; both paths exit nonzero on expiry.
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "codec/codec.hpp"
#include "core/messages.hpp"
#include "core/two_step.hpp"
#include "epaxos/host.hpp"
#include "exec/thread_pool.hpp"
#include "fastpaxos/fast_paxos.hpp"
#include "geo/latency_matrix.hpp"
#include "faults/fault_plan.hpp"
#include "harness/run_spec.hpp"
#include "lowerbound/scenarios.hpp"
#include "modelcheck/explorer.hpp"
#include "node/client.hpp"
#include "node/loadgen.hpp"
#include "node/local_cluster.hpp"
#include "node/runtime.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rsm/rsm.hpp"
#include "transport/tcp.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace twostep;
using consensus::ProcessId;
using consensus::SystemConfig;
using consensus::Value;

/// Minimal flag parser: `--key value` / `-key value` pairs plus bare flags
/// (single- and double-dash spellings are equivalent: `-n 5` == `--n 5`).
/// Tokens that neither start with '-' nor follow a flag are positional
/// operands, in order (`tracemerge a.jsonl b.jsonl --out m.json`).
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.empty() || key[0] != '-') {
        positional_.push_back(std::move(key));
        continue;
      }
      key = key.substr(key.rfind("--", 0) == 0 ? 2 : 1);
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }

  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback = "") const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] long get_int(const std::string& key, long fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stol(it->second);
  }
  [[nodiscard]] bool has(const std::string& key) const { return values_.contains(key); }
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

std::vector<int> parse_int_list(const std::string& s) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    out.push_back(std::stoi(s.substr(pos, comma - pos)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::vector<std::pair<int, long>> parse_proposals(const std::string& s) {
  std::vector<std::pair<int, long>> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string item = s.substr(pos, comma - pos);
    const std::size_t eq = item.find('=');
    if (eq != std::string::npos)
      out.emplace_back(std::stoi(item.substr(0, eq)), std::stol(item.substr(eq + 1)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

int cmd_bounds() {
  util::Table t({"e", "f", "task", "object", "fast paxos", "paxos (e=0)"});
  t.set_title("minimal processes for f-resilient e-two-step consensus");
  for (int e = 1; e <= 4; ++e)
    for (int f = e; f <= 5; ++f)
      t.add_row({std::to_string(e), std::to_string(f),
                 std::to_string(SystemConfig::min_processes_task(e, f)),
                 std::to_string(SystemConfig::min_processes_object(e, f)),
                 std::to_string(SystemConfig::min_processes_fast_paxos(e, f)),
                 std::to_string(2 * f + 1)});
  std::printf("%s", t.to_string().c_str());
  return 0;
}

std::unique_ptr<net::LatencyModel> make_model(const std::string& name, int n) {
  const sim::Tick delta = 100;
  if (name == "ps") return std::make_unique<net::PartialSynchrony>(1500, delta, 1200);
  if (name == "wan") {
    std::vector<int> sites(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) sites[static_cast<std::size_t>(i)] = i % 9;
    return std::make_unique<net::WanMatrix>(net::WanMatrix::nine_regions(2).restrict(sites));
  }
  return std::make_unique<net::SynchronousRounds>(delta);
}

/// Writes `body(os)` to `path`; reports and returns false on I/O failure.
template <typename Body>
bool write_file(const std::string& path, Body&& body) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot open '%s' for writing\n", path.c_str());
    return false;
  }
  body(os);
  return os.good();
}

template <typename Runner>
int report_run(Runner& runner, const SystemConfig& cfg, const Args& args,
               obs::RunTracer* tracer, obs::MetricsRegistry* metrics) {
  auto& cluster = runner.cluster();
  // Prefix any TWOSTEP_LOG output produced during the run with virtual time.
  util::ScopedLogClock log_clock([&cluster] { return cluster.now(); });
  for (const int p : parse_int_list(args.get("crash"))) cluster.crash(p);
  cluster.start_all();
  auto proposals = parse_proposals(args.get("propose"));
  if (proposals.empty())
    for (int p = 0; p < cfg.n; ++p) proposals.emplace_back(p, 100 + p);
  for (const auto& [p, v] : proposals) cluster.propose(p, Value{v});
  cluster.run(5'000'000);

  const sim::Tick delta = cluster.delta();
  util::Table t({"process", "decision", "time", "two-step"});
  for (ProcessId p = 0; p < cfg.n; ++p) {
    if (cluster.crashed(p)) {
      t.add_row({"p" + std::to_string(p), "(crashed)", "-", "-"});
      continue;
    }
    const auto v = runner.monitor().decision(p);
    const auto at = runner.monitor().decision_time(p);
    t.add_row({"p" + std::to_string(p), v ? v->to_string() : "-",
               at ? std::to_string(*at) : "-",
               at && *at <= 2 * delta ? "yes" : "no"});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("safety: %s\n", runner.monitor().safe()
                                  ? "ok"
                                  : runner.monitor().violations().front().c_str());
  std::printf("messages: %zu sent, %zu delivered\n", cluster.network().messages_sent(),
              cluster.network().messages_delivered());

  if (tracer && args.has("trace")) {
    std::printf("\ntrace (%llu events recorded, %zu retained):\n",
                static_cast<unsigned long long>(tracer->recorded()), tracer->size());
    for (const auto& event : tracer->events())
      std::printf("%s\n", obs::format_event(event).c_str());
  }
  if (tracer && args.has("trace-out")) {
    const std::string path = args.get("trace-out");
    if (!write_file(path, [&](std::ostream& os) { obs::write_chrome_trace(*tracer, os); }))
      return 1;
    std::printf("trace written to %s (load in ui.perfetto.dev)\n", path.c_str());
  }
  if (metrics && args.has("metrics-out")) {
    const std::string path = args.get("metrics-out");
    if (!write_file(path, [&](std::ostream& os) { metrics->write_json(os); })) return 1;
    std::printf("metrics written to %s\n", path.c_str());
  }
  return runner.monitor().safe() ? 0 : 2;
}

int cmd_run(const Args& args) {
  const int e = static_cast<int>(args.get_int("e", 1));
  const int f = static_cast<int>(args.get_int("f", 1));
  const std::string protocol = args.get("protocol", "object");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  int n;
  if (protocol == "task") {
    n = SystemConfig::min_processes_task(e, f);
  } else if (protocol == "object") {
    n = SystemConfig::min_processes_object(e, f);
  } else if (protocol == "fastpaxos") {
    n = SystemConfig::min_processes_fast_paxos(e, f);
  } else {
    n = 2 * f + 1;
  }
  n = static_cast<int>(args.get_int("n", n));
  const SystemConfig cfg{n, f, e};
  std::printf("protocol=%s n=%d e=%d f=%d model=%s seed=%llu\n\n", protocol.c_str(), n, e, f,
              args.get("model", "sync").c_str(), static_cast<unsigned long long>(seed));

  // Observability: a tracer when any trace output is requested, a registry
  // when metrics are; with neither flag the probe stays null and the run is
  // uninstrumented.
  obs::RunTracer tracer;
  obs::MetricsRegistry metrics;
  obs::Probe probe;
  const bool want_trace = args.has("trace") || args.has("trace-out");
  const bool want_metrics = args.has("metrics-out");
  if (want_trace) probe.tracer = &tracer;
  if (want_metrics) probe.metrics = &metrics;

  auto model = make_model(args.get("model", "sync"), n);
  obs::RunTracer* tracer_out = want_trace ? &tracer : nullptr;
  obs::MetricsRegistry* metrics_out = want_metrics ? &metrics : nullptr;
  harness::RunSpec spec(cfg);
  spec.model(std::move(model)).seed(seed).probe(probe);
  if (protocol == "task" || protocol == "object") {
    auto runner = spec.core(protocol == "task" ? core::Mode::kTask : core::Mode::kObject);
    return report_run(*runner, cfg, args, tracer_out, metrics_out);
  }
  if (protocol == "fastpaxos") {
    auto runner = spec.fastpaxos();
    return report_run(*runner, cfg, args, tracer_out, metrics_out);
  }
  if (protocol == "paxos") {
    auto runner = spec.paxos();
    return report_run(*runner, cfg, args, tracer_out, metrics_out);
  }
  std::fprintf(stderr, "unknown protocol '%s'\n", protocol.c_str());
  return 1;
}

int cmd_attack(const Args& args) {
  const int e = static_cast<int>(args.get_int("e", 2));
  const int f = static_cast<int>(args.get_int("f", 2));
  const std::string target = args.get("target", "task");
  try {
    lowerbound::AttackOutcome below, at;
    if (target == "task") {
      below = lowerbound::task_below_bound_violation(e, f);
      at = lowerbound::task_at_bound_defense(e, f);
    } else if (target == "object") {
      below = lowerbound::object_below_bound_violation(e, f);
      at = lowerbound::object_at_bound_defense(e, f);
    } else if (target == "fastpaxos") {
      below = lowerbound::fastpaxos_below_bound_violation(e, f);
      at = lowerbound::fastpaxos_at_bound_defense(e, f);
    } else {
      std::fprintf(stderr, "unknown target '%s'\n", target.c_str());
      return 1;
    }
    std::printf("below the bound (n=%d):\n", below.n);
    for (const auto& line : below.narrative) std::printf("  %s\n", line.c_str());
    std::printf("\nat the bound (n=%d):\n", at.n);
    for (const auto& line : at.narrative) std::printf("  %s\n", line.c_str());
    return below.agreement_violated && !at.agreement_violated ? 0 : 2;
  } catch (const std::invalid_argument& err) {
    std::fprintf(stderr, "this (e, f) does not meet the construction's side conditions: %s\n",
                 err.what());
    return 1;
  }
}

int cmd_fuzz(const Args& args) {
  const int e = static_cast<int>(args.get_int("e", 2));
  const int f = static_cast<int>(args.get_int("f", 2));
  const std::string mode_name = args.get("mode", "task");
  const core::Mode mode = mode_name == "object" ? core::Mode::kObject : core::Mode::kTask;
  const int bound = mode == core::Mode::kTask ? SystemConfig::min_processes_task(e, f)
                                              : SystemConfig::min_processes_object(e, f);
  const int n = static_cast<int>(args.get_int("n", bound));
  const SystemConfig cfg{n, f, e};

  core::SelectionPolicy policy = core::SelectionPolicy::kPaper;
  const std::string policy_name = args.get("policy", "paper");
  if (policy_name == "noexcl") policy = core::SelectionPolicy::kNoProposerExclusion;
  if (policy_name == "notie") policy = core::SelectionPolicy::kNoMaxTieBreak;
  if (policy_name == "nothresh") policy = core::SelectionPolicy::kNoThresholdBranch;

  modelcheck::Scenario<core::TwoStepProcess> scenario;
  scenario.config = cfg;
  scenario.factory = [cfg, mode, policy](consensus::Env<core::Message>& env, ProcessId) {
    core::Options o;
    o.mode = mode;
    o.delta = 100;
    o.selection_policy = policy;
    o.leader_of = [] { return ProcessId{0}; };
    return std::make_unique<core::TwoStepProcess>(env, cfg, o);
  };
  scenario.setup = [cfg, mode](modelcheck::DirectDrive<core::TwoStepProcess>& d) {
    d.start_all();
    const int proposers = mode == core::Mode::kObject ? std::max(2, cfg.n / 2) : cfg.n;
    for (ProcessId p = 0; p < proposers; ++p) d.propose(p, Value{p + 1});
  };
  for (ProcessId p = 0; p < cfg.n; ++p) scenario.may_crash.push_back(p);
  scenario.crash_budget = f;
  scenario.faults.drops = static_cast<int>(args.get_int("drop", 0));
  scenario.faults.duplicates = static_cast<int>(args.get_int("dup", 0));
  scenario.faults.partitions = static_cast<int>(args.get_int("partition", 0));

  const auto traces = static_cast<int>(args.get_int("traces", 20000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));
  const int jobs = exec::resolve_jobs(static_cast<int>(args.get_int("jobs", 1)));
  std::printf("fuzzing %s protocol (policy=%s) at n=%d e=%d f=%d: %d traces, %d job(s)",
              mode_name.c_str(), policy_name.c_str(), n, e, f, traces, jobs);
  if (scenario.faults.drops || scenario.faults.duplicates || scenario.faults.partitions)
    std::printf(", fault budget drop=%d dup=%d partition=%d", scenario.faults.drops,
                scenario.faults.duplicates, scenario.faults.partitions);
  std::printf("...\n");
  const auto result =
      modelcheck::Explorer<core::TwoStepProcess>::fuzz(scenario, traces, seed, 250, jobs);
  if (result.violation) {
    std::printf("VIOLATION after %ld traces: %s\n", result.traces, result.what.c_str());
    std::printf("schedule length: %zu adversary choices\n", result.schedule.size());
    return 2;
  }
  std::printf("no violation in %ld traces (%ld total steps)\n", result.traces, result.steps);
  return 0;
}

/// Per-run outcome accumulator for `chaos`.
struct ChaosTally {
  int runs = 0;
  int decided = 0;     ///< runs where every correct process decided
  int violations = 0;  ///< runs with a safety violation
  int fast = 0;        ///< per-process decisions within 2 * delta
  long latency_sum = 0;
  int latency_samples = 0;
  unsigned long long drops = 0;
  unsigned long long dups = 0;
  unsigned long long retransmits = 0;
  unsigned long long gave_up = 0;
};

/// Executes one seeded chaos run on an already-built runner: everyone
/// proposes, the cluster runs to quiescence, outcomes land in the tally.
template <typename Runner>
void chaos_run(Runner& runner, const SystemConfig& cfg, ChaosTally& tally) {
  auto& cluster = runner.cluster();
  cluster.start_all();
  for (ProcessId p = 0; p < cfg.n; ++p) cluster.propose(p, Value{100 + p});
  cluster.run(2'000'000);

  const sim::Tick delta = cluster.delta();
  ++tally.runs;
  bool all_decided = true;
  for (ProcessId p = 0; p < cfg.n; ++p) {
    if (cluster.crashed(p)) continue;
    const auto at = runner.monitor().decision_time(p);
    if (!at) {
      all_decided = false;
      continue;
    }
    tally.latency_sum += *at;
    ++tally.latency_samples;
    if (*at <= 2 * delta) ++tally.fast;
  }
  if (all_decided) ++tally.decided;
  if (!runner.monitor().safe()) ++tally.violations;
  if (const auto* plan = cluster.network().fault_plan()) {
    tally.drops += plan->injected_drops();
    tally.dups += plan->injected_duplicates();
  }
  if (const auto* channel = cluster.reliable_channel()) {
    tally.retransmits += channel->retransmits();
    tally.gave_up += channel->gave_up();
  }
}

int cmd_chaos(const Args& args) {
  const int e = static_cast<int>(args.get_int("e", 2));
  const int f = static_cast<int>(args.get_int("f", 2));
  const std::string protocol = args.get("protocol", "object");
  int n;
  if (protocol == "task") {
    n = SystemConfig::min_processes_task(e, f);
  } else if (protocol == "object") {
    n = SystemConfig::min_processes_object(e, f);
  } else if (protocol == "fastpaxos") {
    n = SystemConfig::min_processes_fast_paxos(e, f);
  } else if (protocol == "paxos") {
    n = 2 * f + 1;
  } else {
    std::fprintf(stderr, "unknown protocol '%s'\n", protocol.c_str());
    return 1;
  }
  n = static_cast<int>(args.get_int("n", n));
  const SystemConfig cfg{n, f, e};

  const double drop = std::stod(args.get("drop", "0"));
  const double dup = std::stod(args.get("dup", "0"));
  const double reorder = std::stod(args.get("reorder", "0"));
  const int runs = static_cast<int>(args.get_int("runs", 20));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const bool reliable = !args.has("raw");

  // --partition T1-T2: sever the lower half of the cluster during [T1, T2).
  sim::Tick part_since = -1, part_heal = -1;
  if (args.has("partition")) {
    const std::string spec = args.get("partition");
    const std::size_t dash = spec.find('-');
    part_since = std::stol(spec.substr(0, dash));
    if (dash != std::string::npos) part_heal = std::stol(spec.substr(dash + 1));
  }

  std::printf(
      "chaos: protocol=%s n=%d e=%d f=%d model=%s runs=%d seed=%llu "
      "drop=%.2f dup=%.2f reorder=%.2f partition=%s reliable=%s\n\n",
      protocol.c_str(), n, e, f, args.get("model", "sync").c_str(), runs,
      static_cast<unsigned long long>(seed), drop, dup, reorder,
      args.has("partition") ? args.get("partition").c_str() : "none", reliable ? "on" : "off");

  ChaosTally tally;
  for (int i = 0; i < runs; ++i) {
    const std::uint64_t run_seed = util::splitmix64(seed, static_cast<std::uint64_t>(i));
    auto model = make_model(args.get("model", "sync"), n);
    const sim::Tick delta = model->delta();
    auto plan = std::make_shared<faults::FaultPlan>(run_seed);
    if (drop > 0) plan->drop(drop);
    if (dup > 0) plan->duplicate(dup);
    if (reorder > 0) plan->reorder(reorder, 2 * delta);
    if (part_since >= 0) {
      std::vector<ProcessId> island;
      for (ProcessId p = 0; p < n / 2; ++p) island.push_back(p);
      plan->partition_cut(std::move(island), part_since, part_heal);
    }
    harness::RunSpec spec(cfg);
    spec.model(std::move(model)).seed(run_seed).fault_plan(plan);
    if (reliable) spec.reliable();
    if (protocol == "task" || protocol == "object") {
      auto runner = spec.core(protocol == "task" ? core::Mode::kTask : core::Mode::kObject);
      chaos_run(*runner, cfg, tally);
    } else if (protocol == "fastpaxos") {
      auto runner = spec.fastpaxos();
      chaos_run(*runner, cfg, tally);
    } else {
      auto runner = spec.paxos();
      chaos_run(*runner, cfg, tally);
    }
  }

  util::Table t({"metric", "value"});
  t.set_title("chaos summary (" + std::to_string(tally.runs) + " runs)");
  const auto pct = [](int num, int den) {
    return den == 0 ? std::string("-")
                    : std::to_string(num * 100 / den) + "% (" + std::to_string(num) + "/" +
                          std::to_string(den) + ")";
  };
  t.add_row({"all correct decided", pct(tally.decided, tally.runs)});
  t.add_row({"fast-path decisions", pct(tally.fast, tally.latency_samples)});
  t.add_row({"mean decision latency",
             tally.latency_samples == 0
                 ? "-"
                 : std::to_string(tally.latency_sum / tally.latency_samples) + " ticks"});
  t.add_row({"safety violations", std::to_string(tally.violations)});
  t.add_row({"injected drops", std::to_string(tally.drops)});
  t.add_row({"injected duplicates", std::to_string(tally.dups)});
  t.add_row({"retransmissions", std::to_string(tally.retransmits)});
  t.add_row({"retransmit give-ups", std::to_string(tally.gave_up)});
  std::printf("%s", t.to_string().c_str());
  std::printf("safety: %s\n", tally.violations == 0 ? "ok" : "VIOLATED");
  return tally.violations == 0 ? 0 : 2;
}

int cmd_sweep(const Args& args) {
  const int e_max = static_cast<int>(args.get_int("emax", 4));
  const int f_max = static_cast<int>(args.get_int("fmax", 5));
  const int jobs = exec::resolve_jobs(static_cast<int>(args.get_int("jobs", 1)));
  std::printf("sweeping Appendix B constructions over 1 <= e <= %d, e <= f <= %d, %d job(s)\n",
              e_max, f_max, jobs);

  obs::MetricsRegistry metrics;
  obs::MetricsRegistry* metrics_out = args.has("metrics-out") ? &metrics : nullptr;
  const auto rows = lowerbound::sweep_bounds(e_max, f_max, jobs, metrics_out);

  util::Table t({"construction", "e", "f", "n below", "violated", "n at", "defended", "verdict"});
  t.set_title("lower-bound grid sweep: attack below the bound, defense at it");
  bool all_predicted = true;
  for (const auto& row : rows) {
    all_predicted = all_predicted && row.as_predicted();
    t.add_row({row.construction, std::to_string(row.e), std::to_string(row.f),
               std::to_string(row.below.n), row.below.agreement_violated ? "yes" : "NO",
               std::to_string(row.at.n), row.at.agreement_violated ? "NO" : "yes",
               row.as_predicted() ? "as predicted" : "UNEXPECTED"});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("%zu rows, %s\n", rows.size(),
              all_predicted ? "all as predicted" : "DEVIATIONS FOUND");

  if (metrics_out) {
    const std::string path = args.get("metrics-out");
    if (!write_file(path, [&](std::ostream& os) { metrics.write_json(os); })) return 1;
    std::printf("metrics written to %s\n", path.c_str());
  }
  return all_predicted ? 0 : 2;
}

// ---- live cluster commands ------------------------------------------------

volatile std::sig_atomic_t g_stop_requested = 0;

std::optional<transport::Endpoint> parse_endpoint(const std::string& s) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= s.size()) return std::nullopt;
  const int port = std::stoi(s.substr(colon + 1));
  if (port < 0 || port > 65535) return std::nullopt;
  return transport::Endpoint{s.substr(0, colon), static_cast<std::uint16_t>(port)};
}

std::vector<transport::Endpoint> parse_endpoint_list(const std::string& s) {
  std::vector<transport::Endpoint> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    if (auto ep = parse_endpoint(s.substr(pos, comma - pos))) out.push_back(std::move(*ep));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// The paper's bound for `protocol` at (e, f); the RSM runs the
/// object-mode core per slot, so it inherits the object bound.
int default_cluster_size(const std::string& protocol, int e, int f) {
  if (protocol == "task") return SystemConfig::min_processes_task(e, f);
  if (protocol == "fastpaxos") return SystemConfig::min_processes_fast_paxos(e, f);
  if (protocol == "epaxos") return 2 * f + 1;  // classic quorums; fast path needs more live
  return SystemConfig::min_processes_object(e, f);
}

std::string format_us(double v) {
  return std::to_string(static_cast<long>(v)) + " us";
}

/// Shared tail of the localcluster report: decision split, client RTT and
/// transport traffic out of the merged per-node + client registries.
void add_live_rows(util::Table& t, obs::MetricsRegistry& merged) {
  t.add_row({"fast decisions", std::to_string(merged.counter_value("decisions.fast"))});
  t.add_row({"slow decisions", std::to_string(merged.counter_value("decisions.slow"))});
  t.add_row({"learned decisions", std::to_string(merged.counter_value("decisions.learned"))});
  auto& rtt = merged.log_histogram("client.rtt_us");
  if (rtt.count() > 0) {
    t.add_row({"client rtt p50", format_us(rtt.percentile(0.5))});
    t.add_row({"client rtt p95", format_us(rtt.percentile(0.95))});
    t.add_row({"client rtt max", format_us(rtt.percentile(1.0))});
  }
  t.add_row({"transport bytes sent", std::to_string(merged.counter_value("transport.bytes_sent"))});
  t.add_row({"transport reconnects", std::to_string(merged.counter_value("transport.reconnects"))});
}

bool write_metrics_if_requested(const Args& args, obs::MetricsRegistry& metrics) {
  if (!args.has("metrics-out")) return true;
  const std::string path = args.get("metrics-out");
  if (!write_file(path, [&](std::ostream& os) { metrics.write_json(os); })) return false;
  std::printf("metrics written to %s\n", path.c_str());
  return true;
}

/// Span-id salt for the localcluster driver's client recorder — far above
/// any replica salt (replica i uses i + 1), so ids never collide.
constexpr std::uint64_t kClientTraceSalt = 1000;

/// Dumps each recorder as `<dir>/<process>.jsonl` (one span per line; the
/// inputs `twostep tracemerge` consumes).  Creates `dir` if needed.
bool write_trace_dir(const std::string& dir,
                     const std::vector<const obs::FlightRecorder*>& recorders) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "trace-dir: cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return false;
  }
  for (const obs::FlightRecorder* rec : recorders) {
    if (!rec) continue;
    const std::string path = dir + "/" + rec->process() + ".jsonl";
    if (!write_file(path, [&](std::ostream& os) { obs::write_spans_jsonl(*rec, os); }))
      return false;
    std::printf("trace spans (%zu) written to %s\n", rec->size(), path.c_str());
  }
  return true;
}

/// The one place the storage flag family is parsed — every subcommand
/// that persists (serve, localcluster, chaossoak, loadgen) builds its
/// node::StorageOptions here, so the flags mean the same thing everywhere:
///   --storage-dir DIR        root of the per-replica storage directories
///   --no-fsync               skip fdatasync (discipline tests, not devices)
///   --group-commit-us G      > 0: one barrier fsync per G-us window
///   --snapshot-every K       > 0: snapshot + truncate the WAL every K records
///   --wal-segment-bytes B    WAL segment rotation threshold
node::StorageOptions storage_options(const Args& args) {
  node::StorageOptions storage;
  storage.dir = args.get("storage-dir");
  storage.fsync = !args.has("no-fsync");
  storage.group_commit_us = static_cast<int>(args.get_int("group-commit-us", 0));
  storage.snapshot_every =
      static_cast<std::uint64_t>(args.get_int("snapshot-every", 0));
  storage.wal_segment_bytes = static_cast<std::uint64_t>(
      args.get_int("wal-segment-bytes", static_cast<long>(storage.wal_segment_bytes)));
  storage.transfer_retry_min_us = args.get_int(
      "transfer-retry-min-us", static_cast<long>(storage.transfer_retry_min_us));
  storage.transfer_retry_max_us = args.get_int(
      "transfer-retry-max-us", static_cast<long>(storage.transfer_retry_max_us));
  return storage;
}

/// The failure-detector flag family, forwarded by every subcommand that
/// hosts a runtime:
///   --failover                  heartbeats + Ω leader election on the loop
///   --failover-period-us P      heartbeat cadence (default 50 ms)
///   --failover-timeout-min-us / --failover-timeout-max-us
///                               suspicion window bounds; jittered, and
///                               doubled per false suspicion up to the max
node::FailoverOptions failover_options(const Args& args) {
  node::FailoverOptions failover;
  failover.enabled = args.has("failover");
  failover.period_us = args.get_int("failover-period-us", static_cast<long>(failover.period_us));
  failover.timeout_min_us =
      args.get_int("failover-timeout-min-us", static_cast<long>(failover.timeout_min_us));
  failover.timeout_max_us =
      args.get_int("failover-timeout-max-us", static_cast<long>(failover.timeout_max_us));
  failover.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  return failover;
}

/// The one place the geo flag family is parsed — every subcommand that
/// spawns a local cluster can turn it into an emulated multi-region
/// deployment:
///   --geo SPEC           preset name (nine-regions, us-eu, global) or a
///                        matrix file (see geo::LatencyMatrix::from_file)
///   --geo-scale S        multiply every delay and the jitter by S
///                        (0.01 compresses 75 ms links to 750 us for smoke
///                        runs without changing the topology's shape)
///   --geo-placement P    replica -> region map: comma list of region names
///                        or indices, one per replica (default: replica i
///                        in region i mod R, the F2 site layout)
/// Returns false (after printing why) on a bad spec; without --geo the
/// chaos config is left untouched.
bool apply_geo_options(const Args& args, int n, transport::ChaosConfig& chaos) {
  if (!args.has("geo")) return true;
  try {
    const double scale = std::stod(args.get("geo-scale", "1"));
    auto matrix = std::make_shared<const geo::LatencyMatrix>(
        geo::LatencyMatrix::from_spec(args.get("geo"), scale));
    chaos.geo_regions = args.has("geo-placement")
                            ? geo::parse_placement(args.get("geo-placement"), *matrix)
                            : geo::round_robin_placement(n, *matrix);
    if (static_cast<int>(chaos.geo_regions.size()) != n) {
      std::fprintf(stderr, "geo: placement covers %zu replica(s) but the cluster has %d\n",
                   chaos.geo_regions.size(), n);
      return false;
    }
    chaos.geo = std::move(matrix);
    chaos.seed = static_cast<std::uint64_t>(args.get_int("seed", chaos.seed));
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "geo: %s\n", ex.what());
    return false;
  }
  return true;
}

/// One line describing the active geo emulation, for run banners.
std::string geo_banner(const transport::ChaosConfig& chaos) {
  if (!chaos.geo) return "off";
  std::string out = std::to_string(chaos.geo->size()) + " regions (";
  for (std::size_t i = 0; i < chaos.geo_regions.size(); ++i) {
    if (i > 0) out += ",";
    out += chaos.geo->regions()[static_cast<std::size_t>(chaos.geo_regions[i])];
  }
  out += "), max one-way " + std::to_string(chaos.geo->max_one_way_us()) + " us, jitter " +
         std::to_string(chaos.geo->jitter_us()) + " us";
  return out;
}

/// The localcluster knobs shared by the rsm and single-shot paths:
/// --trace-dir enables per-process flight recorders (dumped via
/// write_trace_dir after the run), --stats-interval-ms arms the periodic
/// in-node metrics snapshotter, the storage flag family (see
/// storage_options) gives every replica a WAL + snapshot store, and the
/// geo flag family (see apply_geo_options) emulates a multi-region
/// deployment on the peer links.  nullopt on a bad geo spec.
std::optional<node::ClusterOptions> local_cluster_options(const Args& args, int n) {
  node::ClusterOptions options;
  options.trace = args.has("trace-dir");
  options.stats_interval_ms = static_cast<int>(args.get_int("stats-interval-ms", 0));
  options.storage = storage_options(args);
  options.failover = failover_options(args);
  if (!apply_geo_options(args, n, options.chaos)) return std::nullopt;
  return options;
}

/// Collects every live recorder (replicas, then the client's) and writes
/// the trace directory when --trace-dir was given.  False only on I/O
/// failure — tracing off is a silent no-op.
template <typename P>
bool dump_traces_if_requested(const Args& args, node::LocalCluster<P>& cluster,
                              const obs::FlightRecorder* client_flight) {
  if (!args.has("trace-dir")) return true;
  std::vector<const obs::FlightRecorder*> recorders;
  for (int i = 0; i < cluster.size(); ++i) recorders.push_back(cluster.flight(i));
  recorders.push_back(client_flight);
  return write_trace_dir(args.get("trace-dir"), recorders);
}

/// RSM-style workload (rsm and epaxos): one closed-loop client against
/// replica 0 (its proxy).  Safety = every replica's applied log is
/// prefix-consistent — for epaxos this relies on the host's default
/// total-interference key policy (see epaxos::HostOptions::key_mod).
template <typename P, typename MakeProc>
int run_local_rsm(const std::string& protocol, SystemConfig config, long commands,
                  MakeProc make, const Args& args) {
  const auto cluster_options = local_cluster_options(args, config.n);
  if (!cluster_options) return 1;
  if (cluster_options->chaos.geo)
    std::printf("geo emulation: %s\n", geo_banner(cluster_options->chaos).c_str());
  node::LocalCluster<P> cluster(config.n, std::move(make), *cluster_options);
  if (!cluster.wait_for_mesh()) {
    std::fprintf(stderr, "localcluster: mesh did not form\n");
    return 1;
  }
  std::unique_ptr<obs::FlightRecorder> client_flight;
  if (args.has("trace-dir"))
    client_flight = std::make_unique<obs::FlightRecorder>("client", kClientTraceSalt);
  obs::MetricsRegistry client_metrics;
  node::ClientOptions client_options;
  client_options.flight = client_flight.get();
  node::ClientSession client(cluster.endpoints()[0], &client_metrics, client_options);
  if (!client.connect()) {
    std::fprintf(stderr, "localcluster: client could not connect\n");
    return 1;
  }
  const auto result = client.run_closed_loop(commands);

  // Give the other replicas a bounded window to apply what the proxy
  // committed, then snapshot every log.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  const std::size_t target = static_cast<std::size_t>(result.ok);
  while (std::chrono::steady_clock::now() < deadline) {
    bool all = true;
    for (int p = 0; p < config.n; ++p)
      if (cluster.node(p).applied_log().size() < target) all = false;
    if (all) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::vector<std::vector<std::pair<std::int32_t, std::int64_t>>> logs;
  std::size_t applied_min = target;
  for (int p = 0; p < config.n; ++p) {
    logs.push_back(cluster.node(p).applied_log());
    applied_min = std::min(applied_min, logs.back().size());
  }
  cluster.stop();

  bool safe = true;
  for (int p = 1; p < config.n; ++p) {
    const std::size_t m = std::min(logs[0].size(), logs[static_cast<std::size_t>(p)].size());
    if (!std::equal(logs[0].begin(), logs[0].begin() + static_cast<std::ptrdiff_t>(m),
                    logs[static_cast<std::size_t>(p)].begin()))
      safe = false;
  }

  obs::MetricsRegistry merged = cluster.merged_metrics();
  merged.merge(client_metrics);
  util::Table t({"metric", "value"});
  t.set_title("localcluster " + protocol + ": n=" + std::to_string(config.n) + " e=" +
              std::to_string(config.e) + " f=" + std::to_string(config.f) + ", loopback TCP");
  t.add_row({"commands ok", std::to_string(result.ok)});
  t.add_row({"commands rejected", std::to_string(result.rejected)});
  t.add_row({"commands lost", std::to_string(result.lost)});
  t.add_row({"applied everywhere", std::to_string(applied_min) + "/" + std::to_string(target)});
  add_live_rows(t, merged);
  std::printf("%s", t.to_string().c_str());
  std::printf("workload: %s\n", result.to_json().c_str());
  std::printf("safety: %s\n", safe ? "ok (applied logs prefix-consistent)" : "VIOLATED");
  if (!write_metrics_if_requested(args, merged)) return 1;
  if (!dump_traces_if_requested(args, cluster, client_flight.get())) return 1;
  if (!safe) return 2;
  return (result.lost == 0 && result.rejected == 0 && applied_min == target) ? 0 : 1;
}

/// Single-shot workload: one client per replica, all proposing the same
/// value — the unanimous pattern the fast path must carry.  Safety =
/// agreement + validity over the observed replies.
template <typename P, typename MakeProc>
int run_local_singleshot(const std::string& protocol, SystemConfig config, MakeProc make,
                         const Args& args) {
  const auto cluster_options = local_cluster_options(args, config.n);
  if (!cluster_options) return 1;
  if (cluster_options->chaos.geo)
    std::printf("geo emulation: %s\n", geo_banner(cluster_options->chaos).c_str());
  node::LocalCluster<P> cluster(config.n, std::move(make), *cluster_options);
  if (!cluster.wait_for_mesh()) {
    std::fprintf(stderr, "localcluster: mesh did not form\n");
    return 1;
  }
  std::unique_ptr<obs::FlightRecorder> client_flight;
  if (args.has("trace-dir"))
    client_flight = std::make_unique<obs::FlightRecorder>("client", kClientTraceSalt);
  const std::int64_t value = args.get_int("value", 42);
  obs::MetricsRegistry client_metrics;
  node::ClientOptions client_options;
  client_options.flight = client_flight.get();
  long ok = 0, rejected = 0, lost = 0;
  std::vector<std::int64_t> observed;
  for (int p = 0; p < config.n; ++p) {
    node::ClientSession client(cluster.endpoints()[static_cast<std::size_t>(p)],
                               &client_metrics, client_options);
    if (!client.connect()) {
      ++lost;
      continue;
    }
    const auto reply = client.call(value);
    if (!reply) {
      ++lost;
    } else if (!reply->ok) {
      ++rejected;
    } else {
      ++ok;
      observed.push_back(reply->value);
    }
  }
  cluster.stop();

  bool safe = !observed.empty();
  for (const std::int64_t v : observed)
    if (v != observed.front()) safe = false;            // agreement
  if (safe && observed.front() != value) safe = false;  // validity (only `value` was proposed)

  obs::MetricsRegistry merged = cluster.merged_metrics();
  merged.merge(client_metrics);
  util::Table t({"metric", "value"});
  t.set_title("localcluster " + protocol + ": n=" + std::to_string(config.n) + " e=" +
              std::to_string(config.e) + " f=" + std::to_string(config.f) + ", loopback TCP");
  t.add_row({"clients ok", std::to_string(ok)});
  t.add_row({"clients rejected", std::to_string(rejected)});
  t.add_row({"clients lost", std::to_string(lost)});
  t.add_row({"decided value", observed.empty() ? "-" : std::to_string(observed.front())});
  add_live_rows(t, merged);
  std::printf("%s", t.to_string().c_str());
  std::printf("safety: %s\n", safe ? "ok (agreement + validity)" : "VIOLATED");
  if (!write_metrics_if_requested(args, merged)) return 1;
  if (!dump_traces_if_requested(args, cluster, client_flight.get())) return 1;
  if (!safe) return 2;
  return (lost == 0 && rejected == 0) ? 0 : 1;
}

int cmd_localcluster(const Args& args) {
  const std::string protocol = args.get("protocol", "rsm");
  const int e = static_cast<int>(args.get_int("e", 1));
  const int f = static_cast<int>(args.get_int("f", 1));
  const int n = static_cast<int>(args.get_int("n", default_cluster_size(protocol, e, f)));
  const long commands = args.get_int("commands", 1000);
  const sim::Tick delta = args.get_int("delta-us", 100'000);
  if (n < default_cluster_size(protocol, e, f))
    std::fprintf(stderr, "warning: n=%d is below the %s bound for e=%d f=%d (%d)\n", n,
                 protocol.c_str(), e, f, default_cluster_size(protocol, e, f));
  const SystemConfig config(n, f, e);
  std::printf("spawning %d %s replicas on loopback (delta = %lld us)\n", n, protocol.c_str(),
              static_cast<long long>(delta));

  if (protocol == "rsm") {
    return run_local_rsm<rsm::RsmProcess>(
        protocol, config, commands,
        [=](consensus::Env<rsm::Msg>& env, obs::MetricsRegistry& reg, ProcessId) {
          rsm::Options options;
          options.delta = delta;
          options.leader_of = [] { return ProcessId{0}; };
          options.probe.metrics = &reg;
          return std::make_unique<rsm::RsmProcess>(env, config, options);
        },
        args);
  }
  if (protocol == "epaxos") {
    // Leaderless: every replica could proxy, but the audit workload keeps
    // the single closed-loop client on replica 0.  recovery_timeout is what
    // commits instances stranded by a killed command leader.
    const sim::Tick recovery = args.get_int("recovery-timeout-us", 5 * delta);
    return run_local_rsm<epaxos::EPaxosRsm>(
        protocol, config, commands,
        [=](consensus::Env<epaxos::Message>& env, obs::MetricsRegistry& reg, ProcessId) {
          epaxos::HostOptions options;
          options.protocol.delta = delta;
          options.protocol.recovery_timeout = recovery;
          options.protocol.probe.metrics = &reg;
          return std::make_unique<epaxos::EPaxosRsm>(env, config, options);
        },
        args);
  }
  if (protocol == "task" || protocol == "object") {
    const core::Mode mode = protocol == "task" ? core::Mode::kTask : core::Mode::kObject;
    return run_local_singleshot<core::TwoStepProcess>(
        protocol, config,
        [=](consensus::Env<core::Message>& env, obs::MetricsRegistry& reg, ProcessId) {
          core::Options options;
          options.mode = mode;
          options.delta = delta;
          options.leader_of = [] { return ProcessId{0}; };
          options.probe.metrics = &reg;
          return std::make_unique<core::TwoStepProcess>(env, config, options);
        },
        args);
  }
  if (protocol == "fastpaxos") {
    return run_local_singleshot<fastpaxos::FastPaxosProcess>(
        protocol, config,
        [=](consensus::Env<fastpaxos::Message>& env, obs::MetricsRegistry& reg, ProcessId) {
          fastpaxos::Options options;
          options.delta = delta;
          options.leader_of = [] { return ProcessId{0}; };
          options.probe.metrics = &reg;
          return std::make_unique<fastpaxos::FastPaxosProcess>(env, config, options);
        },
        args);
  }
  std::fprintf(stderr, "localcluster: unknown --protocol '%s'\n", protocol.c_str());
  return 1;
}

/// Crash-recovery soak body, generic over the hosted RSM-style protocol
/// (rsm and epaxos): cluster with WALs + failover client + seeded
/// kill/restart schedule + optional link chaos (including --geo).  See the
/// header comment.
template <typename P, typename MakeProc>
int run_chaossoak(const std::string& protocol, SystemConfig config, MakeProc make,
                  const Args& args) {
  const int n = config.n;
  const int e = config.e;
  const int f = config.f;
  const long commands = args.get_int("commands", 1000);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const long period_ms = args.get_int("kill-period-ms", 500);
  const long down_ms = args.get_int("down-ms", 150);
  const long soak_ms = args.get_int("soak-ms", 60'000);
  // Per-command client think time: loopback commands finish in ~100 us, so
  // an unpaced workload can outrun the first crash round entirely; pacing
  // stretches the run across the schedule.
  const long think_us = args.get_int("think-us", 0);

  // Storage: per-replica WAL directories under --storage-dir, or a
  // throwaway temp directory (removed on a clean exit, kept on failure so
  // the logs can be inspected).
  std::string storage_dir = args.get("storage-dir");
  bool temp_storage = false;
  if (storage_dir.empty()) {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "twostep-chaossoak-XXXXXX").string();
    if (!::mkdtemp(tmpl.data())) {
      std::fprintf(stderr, "chaossoak: mkdtemp failed\n");
      return 1;
    }
    storage_dir = tmpl;
    temp_storage = true;
  }

  node::ClusterOptions cluster_options;
  cluster_options.storage = storage_options(args);
  cluster_options.storage.dir = storage_dir;  // may be the mkdtemp fallback
  cluster_options.chaos.drop_rate = std::stod(args.get("drop", "0"));
  cluster_options.chaos.duplicate_rate = std::stod(args.get("dup", "0"));
  cluster_options.chaos.delay_rate = std::stod(args.get("delay", "0"));
  cluster_options.chaos.delay_max_us = args.get_int("delay-max-us", 20'000);
  cluster_options.chaos.seed = seed;
  if (cluster_options.chaos.delay_rate > 0 && cluster_options.chaos.delay_max_us <= 0) {
    std::fprintf(stderr, "chaossoak: --delay > 0 requires --delay-max-us > 0\n");
    return 1;
  }
  if (!apply_geo_options(args, n, cluster_options.chaos)) return 1;
  if (cluster_options.chaos.geo)
    std::printf("geo emulation: %s\n", geo_banner(cluster_options.chaos).c_str());
  cluster_options.failover = failover_options(args);

  // --partition K: K seeded blackhole windows, each severing one random
  // directed link for --partition-ms somewhere inside the soak.  Asymmetric
  // on purpose — the victim still hears the blinded sender, so the failure
  // detector's suspicion/backoff logic faces one-way loss, the case a
  // symmetric partition never exercises.
  const long partition_count = args.get_int("partition", 0);
  const long partition_ms = args.get_int("partition-ms", std::max<long>(down_ms, 200));
  if (partition_count > 0 && n > 1) {
    util::Rng prng{util::splitmix64(seed, 0xB1ACB01EULL)};
    for (long i = 0; i < partition_count; ++i) {
      transport::ChaosConfig::Blackhole hole;
      hole.from =
          static_cast<consensus::ProcessId>(prng.next_below(static_cast<std::uint64_t>(n)));
      hole.to =
          static_cast<consensus::ProcessId>(prng.next_below(static_cast<std::uint64_t>(n - 1)));
      if (hole.to >= hole.from) ++hole.to;
      const std::int64_t span = std::max<std::int64_t>(soak_ms - partition_ms, 1);
      hole.since_us =
          static_cast<std::int64_t>(prng.next_below(static_cast<std::uint64_t>(span))) * 1000;
      hole.heal_us = hole.since_us + partition_ms * 1000;
      cluster_options.chaos.blackholes.push_back(hole);
    }
  }

  // --reconfig: replace one replica mid-soak — a brand-new joiner healed by
  // snapshot state transfer at soak/3, the highest founder retired at
  // 2*soak/3 — while the crash schedule keeps firing.  rsm only (the config
  // log lives in the slot RSM).
  const bool do_reconfig = args.has("reconfig");

  const node::CrashSchedule schedule =
      node::CrashSchedule::generate(seed, n, f, soak_ms, period_ms, down_ms);
  std::printf(
      "chaossoak %s: n=%d e=%d f=%d, %ld commands, %zu crash rounds "
      "(period %ld ms, down %ld ms), chaos drop=%.2f dup=%.2f delay=%.2f, wal dir %s\n",
      protocol.c_str(), n, e, f, commands, schedule.rounds.size(), period_ms, down_ms,
      cluster_options.chaos.drop_rate, cluster_options.chaos.duplicate_rate,
      cluster_options.chaos.delay_rate, storage_dir.c_str());
  if (cluster_options.failover.enabled)
    std::printf("failure detector: on (period %lld us, suspicion %lld-%lld us)\n",
                static_cast<long long>(cluster_options.failover.period_us),
                static_cast<long long>(cluster_options.failover.timeout_min_us),
                static_cast<long long>(cluster_options.failover.timeout_max_us));
  if (partition_count > 0)
    std::printf("link blackholes: %ld window(s) of %ld ms on random directed links\n",
                partition_count, partition_ms);
  if (do_reconfig)
    std::printf("reconfig: add replica %d at %ld ms, remove replica %d at %ld ms\n", n,
                soak_ms / 3, n - 1, 2 * soak_ms / 3);

  node::LocalCluster<P> cluster(n, std::move(make), cluster_options);
  if (!cluster.wait_for_mesh()) {
    std::fprintf(stderr, "chaossoak: mesh did not form\n");
    return 1;
  }

  // Crash driver: replays the schedule (kill → down window → restart)
  // until the workload finishes.  Rounds never overlap, so at most
  // round.replicas.size() <= f replicas are down at any instant.
  // Per-restart latencies land in the driver's registry: recover.cycle_us
  // times the restart call itself (WAL replay + rebind + loop start) and
  // recover.downtime_us the whole kill→back-up window.
  std::atomic<bool> done{false};
  std::int64_t kills = 0;
  std::size_t rounds_run = 0;
  obs::MetricsRegistry driver_metrics;
  auto& recover_cycle_us = driver_metrics.log_histogram("recover.cycle_us");
  auto& recover_downtime_us = driver_metrics.log_histogram("recover.downtime_us");
  std::thread driver([&] {
    using std::chrono::duration_cast;
    using std::chrono::microseconds;
    const auto t0 = std::chrono::steady_clock::now();
    const auto sleep_until = [&](std::chrono::steady_clock::time_point when) {
      while (!done.load(std::memory_order_relaxed) &&
             std::chrono::steady_clock::now() < when)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      return !done.load(std::memory_order_relaxed);
    };
    for (const node::CrashRound& round : schedule.rounds) {
      if (!sleep_until(t0 + std::chrono::milliseconds(round.at_ms))) break;
      const auto killed_at = std::chrono::steady_clock::now();
      for (const int r : round.replicas) cluster.kill(r);
      kills += static_cast<std::int64_t>(round.replicas.size());
      ++rounds_run;
      // Always restart what we killed, even when the workload finished
      // mid-window — the invariant sweep needs every replica back up.
      sleep_until(t0 + std::chrono::milliseconds(round.at_ms + round.down_ms));
      for (const int r : round.replicas) {
        const auto restart_at = std::chrono::steady_clock::now();
        cluster.restart(r);
        const auto up_at = std::chrono::steady_clock::now();
        recover_cycle_us.record(duration_cast<microseconds>(up_at - restart_at).count());
        recover_downtime_us.record(duration_cast<microseconds>(up_at - killed_at).count());
      }
    }
  });

  // Reconfig driver: one replica replacement mid-soak, racing the crash
  // schedule.  The joiner (id n) is outside the schedule's kill pool; the
  // victim may still be killed/restarted after removal, which is exactly
  // the treat-as-crashed semantics the audit must survive.
  std::atomic<int> joiner_id{-1};
  std::atomic<int> removed_id{-1};
  std::thread reconfig_driver;
  if (do_reconfig) {
    reconfig_driver = std::thread([&] {
      const auto t0 = std::chrono::steady_clock::now();
      const auto sleep_until = [&](std::chrono::steady_clock::time_point when) {
        while (!done.load(std::memory_order_relaxed) &&
               std::chrono::steady_clock::now() < when)
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        return !done.load(std::memory_order_relaxed);
      };
      if (!sleep_until(t0 + std::chrono::milliseconds(soak_ms / 3))) return;
      joiner_id.store(cluster.add_replica(), std::memory_order_relaxed);
      if (!sleep_until(t0 + std::chrono::milliseconds(2 * soak_ms / 3))) return;
      if (cluster.remove_replica(n - 1)) removed_id.store(n - 1, std::memory_order_relaxed);
    });
  }

  // Closed-loop failover workload over the full replica list, recording
  // which payloads were acknowledged (the durability invariant's input).
  obs::MetricsRegistry client_metrics;
  node::ClientOptions client_options;
  client_options.seed = seed;
  node::ClientSession client(cluster.endpoints(), &client_metrics, client_options);
  if (!client.connect()) {
    done.store(true);
    driver.join();
    if (reconfig_driver.joinable()) reconfig_driver.join();
    std::fprintf(stderr, "chaossoak: client could not connect\n");
    return 1;
  }
  long ok = 0, rejected = 0, lost = 0;
  std::vector<std::int64_t> acked;
  for (long i = 0; i < commands; ++i) {
    if (think_us > 0) std::this_thread::sleep_for(std::chrono::microseconds(think_us));
    const auto reply = client.call(i);
    if (!reply) {
      ++lost;
      if (!client.connected()) break;
    } else if (!reply->ok) {
      ++rejected;
    } else {
      ++ok;
      acked.push_back(i);
    }
  }
  done.store(true);
  driver.join();
  if (reconfig_driver.joinable()) reconfig_driver.join();

  // Let the trailing Decides propagate, then snapshot every applied log.
  // Drain until every alive node has *applied every acked payload* — a raw
  // size >= ok check is satisfiable by at-least-once duplicates while the
  // final commands are still mid-recovery, which stops the cluster early
  // and shows up as a phantom durability violation.
  // A removed replica's log is a frozen prefix (it stopped hearing Decides
  // the moment the survivors retired its links), so it is excluded here and
  // audited as-is below.  The joiner instead must catch up to the founders'
  // applied head: its log starts at its snapshot floor, so the acked-set
  // test would never hold for payloads compacted below the floor.
  constexpr std::int64_t kPayloadMask = (std::int64_t{1} << 40) - 1;
  const int total = cluster.size();
  const int joiner = joiner_id.load(std::memory_order_relaxed);
  bool joiner_healed = true;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    bool all = true;
    std::int32_t founder_head = -1;
    std::int32_t joiner_head = -1;
    for (int p = 0; p < total && all; ++p) {
      if (cluster.removed(p)) continue;
      if (!cluster.alive(p)) {
        all = false;
        break;
      }
      const auto log = cluster.node(p).applied_log();
      if (p == joiner) {
        joiner_head = log.empty() ? -1 : log.back().first;
        continue;
      }
      founder_head = std::max(founder_head, log.empty() ? -1 : log.back().first);
      std::set<std::int64_t> applied;
      for (const auto& [slot, cmd] : log) applied.insert(cmd & kPayloadMask);
      for (const std::int64_t payload : acked)
        if (!applied.contains(payload)) {
          all = false;
          break;
        }
    }
    joiner_healed = joiner < 0 || (joiner_head >= 0 && joiner_head >= founder_head);
    if (all && joiner_healed) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::vector<std::vector<std::pair<std::int32_t, std::int64_t>>> logs;
  for (int p = 0; p < total; ++p)
    logs.push_back(cluster.alive(p)
                       ? cluster.node(p).applied_log()
                       : std::vector<std::pair<std::int32_t, std::int64_t>>{});
  cluster.stop();

  // Invariants.  Duplicates are legal (at-least-once across a proxy
  // crash); divergence, foreign commands and lost acked commands are not.
  // Post-mortem state dump (TWOSTEP_SOAK_DUMP=<dir>): the full applied log
  // of every replica, plus — for protocols exposing a replica() — every
  // instance this replica knows with its raw status, attributes and ballot.
  const auto dump_soak_state = [&] {
    const char* dump_dir = std::getenv("TWOSTEP_SOAK_DUMP");
    if (dump_dir == nullptr) return;
    for (std::size_t q = 0; q < logs.size(); ++q) {
      const std::string path = std::string(dump_dir) + "/soaklog_" + std::to_string(q);
      if (FILE* f = std::fopen(path.c_str(), "w")) {
        for (const auto& [slot, cmd] : logs[q])
          std::fprintf(f, "%d %lld\n", slot, static_cast<long long>(cmd));
        std::fclose(f);
      }
    }
    {
      const std::string path = std::string(dump_dir) + "/soakacked";
      if (FILE* f = std::fopen(path.c_str(), "w")) {
        for (const auto a : acked) std::fprintf(f, "%lld\n", static_cast<long long>(a));
        std::fclose(f);
      }
    }
    if constexpr (requires(P& h) { h.replica(); }) {
      for (int q = 0; q < n; ++q) {
        if (!cluster.alive(q)) continue;
        const std::string path = std::string(dump_dir) + "/soakinst_" + std::to_string(q);
        FILE* f = std::fopen(path.c_str(), "w");
        if (f == nullptr) continue;
        cluster.node(q).unsafe_process().replica().for_each_instance(
            [&](epaxos::InstanceId iid, const auto& s) {
              std::fprintf(f, "(%d,%d) st=%d seq=%lld ballot=%lld payload=%lld deps:",
                           iid.replica, iid.index, static_cast<int>(s.status),
                           static_cast<long long>(s.seq), static_cast<long long>(s.ballot),
                           static_cast<long long>(s.cmd.payload));
              for (const auto d : s.deps) std::fprintf(f, " (%d,%d)", d.replica, d.index);
              std::fprintf(f, "\n");
            });
        std::fclose(f);
      }
    }
  };
  std::vector<std::string> violations;
  std::size_t longest = 0;
  for (std::size_t p = 1; p < logs.size(); ++p)
    if (logs[p].size() > logs[longest].size()) longest = p;
  // Pairwise prefix agreement, aligned by slot: a joiner healed by snapshot
  // state transfer (or a founder restarted past a compaction) applies only
  // from its snapshot floor, so its log is a slot-offset suffix rather than
  // sharing index 0 with replica 0.  Both logs apply in log order, so after
  // skipping to the common first slot the overlap must match entrywise.
  for (std::size_t p = 1; p < logs.size(); ++p) {
    const auto& a = logs[0];
    const auto& b = logs[p];
    if (a.empty() || b.empty()) continue;
    std::size_t i = 0, j = 0;
    if (a.front().first < b.front().first)
      while (i < a.size() && a[i].first < b.front().first) ++i;
    else
      while (j < b.size() && b[j].first < a.front().first) ++j;
    const std::size_t m = std::min(a.size() - i, b.size() - j);
    for (std::size_t k = 0; k < m; ++k)
      if (a[i + k] != b[j + k]) {
        violations.push_back("agreement: replica " + std::to_string(p) +
                             " diverges from replica 0 at applied index " +
                             std::to_string(j + k));
        dump_soak_state();
        break;
      }
  }
  for (std::size_t p = 0; p < logs.size(); ++p)
    for (const auto& [slot, cmd] : logs[p]) {
      const std::int64_t payload = cmd & kPayloadMask;
      if (payload < 0 || payload >= commands) {
        violations.push_back("validity: replica " + std::to_string(p) + " applied slot " +
                             std::to_string(slot) + " with un-submitted payload " +
                             std::to_string(payload));
        break;
      }
    }
  std::unordered_set<std::int64_t> applied_payloads;
  for (const auto& [slot, cmd] : logs[longest]) applied_payloads.insert(cmd & kPayloadMask);
  std::int64_t lost_acked = 0;
  for (const std::int64_t payload : acked)
    if (!applied_payloads.contains(payload)) ++lost_acked;
  if (lost_acked > 0) {
    violations.push_back("durability: " + std::to_string(lost_acked) +
                         " acknowledged command(s) missing from the longest applied log");
    dump_soak_state();
  }

  obs::MetricsRegistry merged = cluster.merged_metrics();
  merged.merge(client_metrics);
  merged.merge(driver_metrics);
  util::Table t({"metric", "value"});
  t.set_title("chaossoak " + protocol + ": n=" + std::to_string(n) + " e=" + std::to_string(e) +
              " f=" + std::to_string(f) + ", loopback TCP + WAL + crash schedule");
  t.add_row({"commands ok", std::to_string(ok)});
  t.add_row({"commands rejected", std::to_string(rejected)});
  t.add_row({"commands lost", std::to_string(lost)});
  t.add_row({"crash rounds run", std::to_string(rounds_run) + "/" +
                                     std::to_string(schedule.rounds.size())});
  t.add_row({"replica kills", std::to_string(kills)});
  t.add_row({"client failovers", std::to_string(merged.counter_value("client.failovers"))});
  t.add_row({"client timeouts", std::to_string(merged.counter_value("client.timeouts"))});
  t.add_row({"client conn lost", std::to_string(merged.counter_value("client.conn_lost"))});
  t.add_row({"wal appends", std::to_string(merged.counter_value("wal.appends"))});
  t.add_row({"wal syncs", std::to_string(merged.counter_value("wal.syncs"))});
  t.add_row({"wal recovered records",
             std::to_string(merged.counter_value("wal.recovered_records"))});
  t.add_row({"wal truncated records",
             std::to_string(merged.counter_value("wal.truncated_records"))});
  t.add_row({"snapshots written", std::to_string(merged.counter_value("snapshot.written"))});
  t.add_row(
      {"snapshots recovered", std::to_string(merged.counter_value("snapshot.recovered"))});
  t.add_row(
      {"snapshot transfers in", std::to_string(merged.counter_value("transfer.installed"))});
  t.add_row({"recovered slots", std::to_string(merged.counter_value("recover.slots"))});
  t.add_row(
      {"recovered decided slots", std::to_string(merged.counter_value("recover.decided"))});
  t.add_row(
      {"recovered applied prefix", std::to_string(merged.counter_value("recover.applied"))});
  if (cluster_options.failover.enabled) {
    t.add_row({"suspicions", std::to_string(merged.counter_value("failover.suspicions"))});
    t.add_row({"false suspicions",
               std::to_string(merged.counter_value("failover.false_suspicions"))});
    t.add_row({"leader changes",
               std::to_string(merged.counter_value("failover.leader_changes"))});
  }
  if (do_reconfig) {
    t.add_row({"config adds applied",
               std::to_string(merged.counter_value("config.adds_applied"))});
    t.add_row({"config removes applied",
               std::to_string(merged.counter_value("config.removes_applied"))});
  }
  t.add_row({"chaos dropped", std::to_string(merged.counter_value("transport.chaos_dropped"))});
  t.add_row(
      {"chaos duplicated", std::to_string(merged.counter_value("transport.chaos_duplicated"))});
  t.add_row({"chaos delayed", std::to_string(merged.counter_value("transport.chaos_delayed"))});
  auto& rtt = merged.log_histogram("client.rtt_us");
  if (rtt.count() > 0) {
    t.add_row({"client rtt p50", format_us(rtt.percentile(0.5))});
    t.add_row({"client rtt p95", format_us(rtt.percentile(0.95))});
  }
  auto& failover_rtt = merged.log_histogram("client.failover_rtt_us");
  if (failover_rtt.count() > 0) {
    t.add_row({"failover rtt p50", format_us(failover_rtt.percentile(0.5))});
    t.add_row({"failover rtt p99", format_us(failover_rtt.percentile(0.99))});
  }
  if (recover_cycle_us.count() > 0) {
    t.add_row({"recover cycle p50", format_us(recover_cycle_us.percentile(0.5))});
    t.add_row({"recover cycle p99", format_us(recover_cycle_us.percentile(0.99))});
  }
  std::printf("%s", t.to_string().c_str());
  for (const std::string& v : violations) std::printf("VIOLATION: %s\n", v.c_str());
  std::printf("invariants: %s\n",
              violations.empty() ? "ok (agreement + validity + durability)" : "VIOLATED");
  if (!write_metrics_if_requested(args, merged)) return 1;
  if (!violations.empty()) return 2;  // keep the WAL dir for inspection
  if (temp_storage) {
    std::error_code ec;
    std::filesystem::remove_all(storage_dir, ec);
  }
  // A --reconfig run that never reached its windows (workload drained too
  // fast) or whose joiner never healed did not test what was asked — fail
  // it like a lost command, not like a safety violation.
  if (do_reconfig && joiner < 0) {
    std::fprintf(stderr,
                 "chaossoak: workload finished before the reconfig window; raise "
                 "--think-us or --commands so the soak spans %ld ms\n",
                 soak_ms);
    return 1;
  }
  if (do_reconfig && !joiner_healed) {
    std::fprintf(stderr, "chaossoak: joiner %d never caught up to the founders' applied head\n",
                 joiner);
    return 1;
  }
  if (do_reconfig && removed_id.load(std::memory_order_relaxed) < 0) {
    std::fprintf(stderr, "chaossoak: the remove window never fired; raise --think-us or "
                         "--commands so the soak spans %ld ms\n",
                 soak_ms);
    return 1;
  }
  return (lost == 0 && rejected == 0) ? 0 : 1;
}

int cmd_chaossoak(const Args& args) {
  const std::string protocol = args.get("protocol", "rsm");
  const int e = static_cast<int>(args.get_int("e", 1));
  const int f = static_cast<int>(args.get_int("f", 1));
  const int n = static_cast<int>(args.get_int(
      "n", default_cluster_size(protocol == "epaxos" ? "epaxos" : "rsm", e, f)));
  const sim::Tick delta = args.get_int("delta-us", 100'000);
  const SystemConfig config(n, f, e);

  if (args.has("reconfig") && protocol != "rsm") {
    std::fprintf(stderr,
                 "chaossoak: --reconfig needs --protocol rsm (the config log lives in the "
                 "slot RSM)\n");
    return 1;
  }
  if (protocol == "rsm") {
    return run_chaossoak<rsm::RsmProcess>(
        protocol, config,
        [=](consensus::Env<rsm::Msg>& env, obs::MetricsRegistry& reg, consensus::ProcessId) {
          rsm::Options options;
          options.delta = delta;
          options.leader_of = [] { return ProcessId{0}; };
          options.probe.metrics = &reg;
          return std::make_unique<rsm::RsmProcess>(env, config, options);
        },
        args);
  }
  if (protocol == "epaxos") {
    const sim::Tick recovery = args.get_int("recovery-timeout-us", 5 * delta);
    return run_chaossoak<epaxos::EPaxosRsm>(
        protocol, config,
        [=](consensus::Env<epaxos::Message>& env, obs::MetricsRegistry& reg,
            consensus::ProcessId) {
          epaxos::HostOptions options;
          options.protocol.delta = delta;
          options.protocol.recovery_timeout = recovery;
          options.protocol.probe.metrics = &reg;
          return std::make_unique<epaxos::EPaxosRsm>(env, config, options);
        },
        args);
  }
  std::fprintf(stderr, "chaossoak: unknown --protocol '%s' (rsm or epaxos)\n",
               protocol.c_str());
  return 1;
}

/// Shared loadgen report rows (both modes).
void add_loadgen_rows(util::Table& t, const node::LoadResult& result) {
  char rate[64];
  std::snprintf(rate, sizeof(rate), "%.0f cmds/s", result.offered_rate());
  t.add_row({"offered rate", rate});
  std::snprintf(rate, sizeof(rate), "%.0f cmds/s", result.achieved_rate());
  t.add_row({"achieved rate", rate});
  t.add_row({"commands offered", std::to_string(result.offered)});
  t.add_row({"commands ok", std::to_string(result.ok)});
  t.add_row({"commands rejected", std::to_string(result.rejected)});
  t.add_row({"commands lost", std::to_string(result.lost)});
  t.add_row({"resends", std::to_string(result.resends)});
  t.add_row({"reconnects", std::to_string(result.reconnects)});
  if (result.rtt.count > 0) {
    t.add_row({"rtt p50", format_us(result.rtt.p50)});
    t.add_row({"rtt p99", format_us(result.rtt.p99)});
    t.add_row({"rtt max", format_us(static_cast<double>(result.rtt.max))});
  }
}

/// Open-loop saturation workload; see the usage comment at the top.  In
/// local mode the run ends with the chaossoak invariant sweep over every
/// replica's applied log.
int cmd_loadgen(const Args& args) {
  node::LoadgenOptions gen_options;
  gen_options.rate = args.get_int("rate", 5'000);
  gen_options.sessions = static_cast<int>(args.get_int("sessions", 256));
  gen_options.connections = static_cast<int>(args.get_int("connections", 8));
  gen_options.duration_ms = args.get_int("duration-ms", 5'000);
  gen_options.drain_ms = args.get_int("drain-ms", 2'000);
  gen_options.poisson = !args.has("fixed");
  gen_options.spread = args.has("spread");
  gen_options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  // Remote mode: drive a cluster someone else is running.
  if (args.has("connect")) {
    const auto endpoints = parse_endpoint_list(args.get("connect"));
    if (endpoints.empty()) {
      std::fprintf(stderr, "loadgen: --connect needs H:P[,H:P...]\n");
      return 1;
    }
    node::OpenLoopLoadgen gen(endpoints, gen_options);
    const auto result = gen.run();
    util::Table t({"metric", "value"});
    t.set_title("open-loop loadgen against " + endpoints.front().to_string());
    add_loadgen_rows(t, result);
    std::printf("%s", t.to_string().c_str());
    std::printf("loadgen: %s\n", result.to_json().c_str());
    return (result.lost == 0 && result.rejected == 0) ? 0 : 1;
  }

  // Local mode: spawn the cluster, saturate it, audit the invariants.
  const int e = static_cast<int>(args.get_int("e", 1));
  const int f = static_cast<int>(args.get_int("f", 1));
  const int n = static_cast<int>(args.get_int("n", default_cluster_size("rsm", e, f)));
  const sim::Tick delta = args.get_int("delta-us", 100'000);
  const int batch_max = static_cast<int>(args.get_int("batch-max", 32));
  const sim::Tick batch_linger = args.get_int("batch-linger-us", 200);
  const int pipeline_window = static_cast<int>(args.get_int("pipeline-window", 32));
  const SystemConfig config(n, f, e);

  node::ClusterOptions cluster_options;
  cluster_options.storage = storage_options(args);
  std::printf(
      "loadgen: n=%d rsm replicas, rate=%lld cmds/s, %d sessions / %d connections, "
      "batch-max=%d linger=%lld us, pipeline-window=%d, group-commit=%d us, storage=%s\n",
      n, static_cast<long long>(gen_options.rate), gen_options.sessions,
      gen_options.connections, batch_max, static_cast<long long>(batch_linger),
      pipeline_window, cluster_options.storage.group_commit_us,
      cluster_options.storage.dir.empty() ? "off" : cluster_options.storage.dir.c_str());

  node::LocalCluster<rsm::RsmProcess> cluster(
      n,
      [&](consensus::Env<rsm::Msg>& env, obs::MetricsRegistry& reg, consensus::ProcessId) {
        rsm::Options options;
        options.delta = delta;
        options.leader_of = [] { return ProcessId{0}; };
        options.probe.metrics = &reg;
        options.batch_max = batch_max;
        options.batch_linger = batch_linger;
        options.pipeline_window = pipeline_window;
        options.batch_fill = &reg.log_histogram("rsm.batch_fill");
        return std::make_unique<rsm::RsmProcess>(env, config, options);
      },
      cluster_options);
  if (!cluster.wait_for_mesh()) {
    std::fprintf(stderr, "loadgen: mesh did not form\n");
    return 1;
  }

  node::OpenLoopLoadgen gen(cluster.endpoints(), gen_options);
  const auto result = gen.run();

  // Let the trailing Decides propagate, then snapshot every applied log.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  const auto target = static_cast<std::size_t>(result.ok);
  while (std::chrono::steady_clock::now() < deadline) {
    bool all = true;
    for (int p = 0; p < n; ++p)
      if (cluster.node(p).applied_log().size() < target) all = false;
    if (all) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::vector<std::vector<std::pair<std::int32_t, std::int64_t>>> logs;
  for (int p = 0; p < n; ++p) logs.push_back(cluster.node(p).applied_log());
  cluster.stop();

  // The chaossoak invariants, against the loadgen's id scheme: session i
  // issued payloads (i << 28 | seq) for seq < issued_per_session[i].
  constexpr std::int64_t kPayloadMask = (std::int64_t{1} << 40) - 1;
  constexpr std::int64_t kSeqMask = (std::int64_t{1} << 28) - 1;
  const auto& issued = gen.issued_per_session();
  const auto payload_issued = [&](std::int64_t payload) {
    const std::int64_t session = payload >> 28;
    return payload >= 0 && session < static_cast<std::int64_t>(issued.size()) &&
           (payload & kSeqMask) < issued[static_cast<std::size_t>(session)];
  };
  std::vector<std::string> violations;
  std::size_t longest = 0;
  for (std::size_t p = 1; p < logs.size(); ++p) {
    if (logs[p].size() > logs[longest].size()) longest = p;
    const std::size_t m = std::min(logs[0].size(), logs[p].size());
    for (std::size_t i = 0; i < m; ++i)
      if (logs[0][i] != logs[p][i]) {
        violations.push_back("agreement: replica " + std::to_string(p) +
                             " diverges from replica 0 at applied index " + std::to_string(i));
        break;
      }
  }
  for (std::size_t p = 0; p < logs.size(); ++p)
    for (const auto& [slot, cmd] : logs[p])
      if (!payload_issued(cmd & kPayloadMask)) {
        violations.push_back("validity: replica " + std::to_string(p) + " applied slot " +
                             std::to_string(slot) + " with un-issued payload " +
                             std::to_string(cmd & kPayloadMask));
        break;
      }
  std::unordered_set<std::int64_t> applied_payloads;
  for (const auto& [slot, cmd] : logs[longest]) applied_payloads.insert(cmd & kPayloadMask);
  std::int64_t lost_acked = 0;
  for (const std::int64_t payload : gen.acked_payloads())
    if (!applied_payloads.contains(payload)) ++lost_acked;
  if (lost_acked > 0)
    violations.push_back("durability: " + std::to_string(lost_acked) +
                         " acknowledged command(s) missing from the longest applied log");

  obs::MetricsRegistry merged = cluster.merged_metrics();
  util::Table t({"metric", "value"});
  t.set_title("open-loop loadgen: n=" + std::to_string(n) + " rsm, loopback TCP");
  add_loadgen_rows(t, result);
  auto& fill = merged.log_histogram("rsm.batch_fill");
  if (fill.count() > 0) {
    char mean[64];
    std::snprintf(mean, sizeof(mean), "%.1f cmds", fill.mean());
    t.add_row({"batch fill mean", mean});
  }
  t.add_row({"wal syncs", std::to_string(merged.counter_value("wal.syncs"))});
  t.add_row({"wal barriers", std::to_string(merged.counter_value("wal.barriers"))});
  std::printf("%s", t.to_string().c_str());
  std::printf("loadgen: %s\n", result.to_json().c_str());
  for (const std::string& v : violations) std::printf("VIOLATION: %s\n", v.c_str());
  std::printf("invariants: %s\n",
              violations.empty() ? "ok (agreement + validity + durability)" : "VIOLATED");
  if (!write_metrics_if_requested(args, merged)) return 1;
  if (!violations.empty()) return 2;
  return (result.lost == 0 && result.rejected == 0) ? 0 : 1;
}

template <typename P, typename MakeProc>
int serve_until_signal(ProcessId id, const std::vector<transport::Endpoint>& peers,
                       const transport::Endpoint& self, MakeProc make, const Args& args) {
  node::RuntimeOptions rt_options;
  rt_options.stats_interval_ms = static_cast<int>(args.get_int("stats-interval-ms", 0));
  // A multi-process replica persists under <storage-dir>/replica-<id>; the
  // same flag family as the local-cluster commands (see storage_options).
  rt_options.storage = storage_options(args);
  rt_options.failover = failover_options(args);
  // A joiner (id == peers.size()) starts as a silent non-member of the
  // listed universe: it dials the members but proposes nothing until a
  // `twostep_cli join` commits its kAdd, at which point the members dial
  // back and heal it by snapshot state transfer.
  const bool joiner = id >= static_cast<int>(peers.size());
  node::Runtime<P> runtime(id, static_cast<int>(peers.size()), self, std::move(make),
                           std::move(rt_options));
  runtime.start(peers);
  std::printf("replica %d serving on %s, %zu-replica cluster%s (SIGINT to stop)\n", id,
              runtime.endpoint().to_string().c_str(), peers.size(),
              joiner ? " (joiner; awaiting `join`)" : "");
  std::signal(SIGINT, [](int) { g_stop_requested = 1; });
  std::signal(SIGTERM, [](int) { g_stop_requested = 1; });
  while (!g_stop_requested) std::this_thread::sleep_for(std::chrono::milliseconds(100));
  runtime.stop();
  if (!write_metrics_if_requested(args, runtime.metrics())) return 1;
  std::printf("replica %d: clean shutdown\n", id);
  return 0;
}

int cmd_serve(const Args& args) {
  const auto peers = parse_endpoint_list(args.get("peers"));
  const int id = static_cast<int>(args.get_int("id", 0));
  // --id == peers.size() is the joiner spelling: a brand-new replica whose
  // genesis universe is the listed cluster, with its own --listen endpoint
  // (it has no slot in the peer list yet).
  const bool joiner = id == static_cast<int>(peers.size());
  if (peers.size() < 2 || id < 0 || id > static_cast<int>(peers.size())) {
    std::fprintf(stderr,
                 "serve: need --peers H:P,H:P,... (>= 2 endpoints, in replica-id order) "
                 "and --id I within it (or I == the list size to join: see --listen)\n");
    return 1;
  }
  std::optional<transport::Endpoint> self =
      joiner ? parse_endpoint(args.get("listen")) : std::optional(peers[static_cast<std::size_t>(id)]);
  if (!self) {
    std::fprintf(stderr, "serve: a joiner (--id == the peer count) needs --listen H:P\n");
    return 1;
  }
  const std::string protocol = args.get("protocol", "rsm");
  const int e = static_cast<int>(args.get_int("e", 1));
  const int f = static_cast<int>(args.get_int("f", 1));
  const sim::Tick delta = args.get_int("delta-us", 100'000);
  const SystemConfig config(static_cast<int>(peers.size()), f, e);

  if (protocol == "rsm") {
    return serve_until_signal<rsm::RsmProcess>(
        id, peers, *self,
        [&](consensus::Env<rsm::Msg>& env, obs::MetricsRegistry& reg) {
          rsm::Options options;
          options.delta = delta;
          options.leader_of = [] { return ProcessId{0}; };
          options.probe.metrics = &reg;
          return std::make_unique<rsm::RsmProcess>(env, config, options);
        },
        args);
  }
  if (protocol == "epaxos") {
    const sim::Tick recovery = args.get_int("recovery-timeout-us", 5 * delta);
    return serve_until_signal<epaxos::EPaxosRsm>(
        id, peers, *self,
        [&](consensus::Env<epaxos::Message>& env, obs::MetricsRegistry& reg) {
          epaxos::HostOptions options;
          options.protocol.delta = delta;
          options.protocol.recovery_timeout = recovery;
          options.protocol.probe.metrics = &reg;
          return std::make_unique<epaxos::EPaxosRsm>(env, config, options);
        },
        args);
  }
  if (protocol == "task" || protocol == "object") {
    const core::Mode mode = protocol == "task" ? core::Mode::kTask : core::Mode::kObject;
    return serve_until_signal<core::TwoStepProcess>(
        id, peers, *self,
        [&](consensus::Env<core::Message>& env, obs::MetricsRegistry& reg) {
          core::Options options;
          options.mode = mode;
          options.delta = delta;
          options.leader_of = [] { return ProcessId{0}; };
          options.probe.metrics = &reg;
          return std::make_unique<core::TwoStepProcess>(env, config, options);
        },
        args);
  }
  if (protocol == "fastpaxos") {
    return serve_until_signal<fastpaxos::FastPaxosProcess>(
        id, peers, *self,
        [&](consensus::Env<fastpaxos::Message>& env, obs::MetricsRegistry& reg) {
          fastpaxos::Options options;
          options.delta = delta;
          options.leader_of = [] { return ProcessId{0}; };
          options.probe.metrics = &reg;
          return std::make_unique<fastpaxos::FastPaxosProcess>(env, config, options);
        },
        args);
  }
  std::fprintf(stderr, "serve: unknown --protocol '%s'\n", protocol.c_str());
  return 1;
}

int cmd_client(const Args& args) {
  const auto ep = parse_endpoint(args.get("connect"));
  if (!ep) {
    std::fprintf(stderr, "client: --connect host:port is required\n");
    return 1;
  }
  obs::MetricsRegistry metrics;
  node::ClientSession client(*ep, &metrics);
  if (!client.connect()) {
    std::fprintf(stderr, "client: could not connect to %s\n", ep->to_string().c_str());
    return 1;
  }
  const long commands = args.get_int("commands", 100);
  const auto result = client.run_closed_loop(
      commands, [&](std::int64_t i) { return args.get_int("value", i); });

  util::Table t({"metric", "value"});
  t.set_title("closed-loop client against " + ep->to_string());
  t.add_row({"commands ok", std::to_string(result.ok)});
  t.add_row({"commands rejected", std::to_string(result.rejected)});
  t.add_row({"commands lost", std::to_string(result.lost)});
  t.add_row({"timeouts", std::to_string(result.timeouts)});
  t.add_row({"failovers", std::to_string(result.failovers)});
  auto& rtt = metrics.log_histogram("client.rtt_us");
  if (rtt.count() > 0) {
    t.add_row({"rtt mean", format_us(rtt.mean())});
    t.add_row({"rtt p50", format_us(rtt.percentile(0.5))});
    t.add_row({"rtt p95", format_us(rtt.percentile(0.95))});
    t.add_row({"rtt p99", format_us(rtt.percentile(0.99))});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("workload: %s\n", result.to_json().c_str());
  return (result.lost == 0 && result.rejected == 0) ? 0 : 1;
}

/// Merges per-process flight-recorder JSONL dumps into one Chrome-trace
/// JSON (chrome://tracing / ui.perfetto.dev).  The span ids carry each
/// process's salt, so concatenating files from any number of processes is
/// safe; cross-process parent links become flow arrows.
int cmd_tracemerge(const Args& args) {
  const std::vector<std::string>& inputs = args.positional();
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "tracemerge: usage: twostep_cli tracemerge <spans.jsonl>... "
                 "[--out merged.json]\n");
    return 1;
  }
  std::vector<obs::MergedSpan> spans;
  for (const std::string& path : inputs) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "tracemerge: cannot open %s\n", path.c_str());
      return 1;
    }
    std::string error;
    if (!obs::parse_spans_jsonl(in, spans, &error)) {
      std::fprintf(stderr, "tracemerge: %s: %s\n", path.c_str(), error.c_str());
      return 1;
    }
  }
  const std::string out_path = args.get("out", "trace_merged.json");
  if (!write_file(out_path, [&](std::ostream& os) { obs::write_chrome_spans(spans, os); }))
    return 1;
  std::printf("tracemerge: %zu spans from %zu file(s) -> %s\n", spans.size(), inputs.size(),
              out_path.c_str());
  return 0;
}

/// Deadline-bounded dial shared by the admin verbs (stats / join / leave):
/// nonblocking connect + poll, restored to blocking mode on success so the
/// caller's poll/recv loop reads as before.  A hung or blackholed target
/// fails within the deadline instead of parking in a blocking ::connect.
/// Returns the fd, or -1 after printing a `who`-prefixed diagnosis.
int dial_deadline(const char* who, const transport::Endpoint& ep,
                  std::chrono::steady_clock::time_point deadline) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "%s: bad address %s\n", who, ep.host.c_str());
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    std::fprintf(stderr, "%s: socket: %s\n", who, std::strerror(errno));
    return -1;
  }
  const auto fail = [&](const char* what) {
    std::fprintf(stderr, "%s: %s %s: %s\n", who, what, ep.to_string().c_str(),
                 std::strerror(errno));
    ::close(fd);
    return -1;
  };
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) return fail("could not connect to");
    for (;;) {
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                                 deadline - std::chrono::steady_clock::now())
                                 .count();
      if (remaining <= 0) {
        errno = ETIMEDOUT;
        return fail("timed out connecting to");
      }
      pollfd pfd{fd, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, static_cast<int>(remaining));
      if (ready < 0 && errno == EINTR) continue;
      if (ready < 0) return fail("could not connect to");
      if (ready == 0) {
        errno = ETIMEDOUT;
        return fail("timed out connecting to");
      }
      break;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      if (err != 0) errno = err;
      return fail("could not connect to");
    }
  }
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) & ~O_NONBLOCK);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// Sends one frame, then pumps replies into `consume` until it returns
/// true, the deadline passes, or the connection dies.  Returns whether
/// `consume` accepted a frame.  The caller owns (and closes) the fd.
template <typename Consume>
bool send_and_await(int fd, const std::vector<std::uint8_t>& frame,
                    std::chrono::steady_clock::time_point deadline, Consume&& consume) {
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t w = ::send(fd, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) return false;
    sent += static_cast<std::size_t>(w);
  }
  transport::FrameParser parser;
  std::uint8_t buf[65536];
  for (;;) {
    while (auto f = parser.next())
      if (consume(*f)) return true;
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                               deadline - std::chrono::steady_clock::now())
                               .count();
    if (parser.failed() || remaining <= 0) return false;
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) return false;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    if (!parser.feed({buf, static_cast<std::size_t>(n)})) return false;
  }
}

/// Scrapes a running replica: dials the endpoint, sends one kStatsRequest
/// frame and prints the node's JSON snapshot (schema twostep-stats/1).
/// The request needs no Hello handshake — any process may ask.  The
/// --timeout-ms budget covers the dial AND the reply; both paths exit
/// nonzero on expiry.
int cmd_stats(const Args& args) {
  const std::string target =
      args.positional().empty() ? args.get("connect") : args.positional().front();
  const auto ep = parse_endpoint(target);
  if (!ep) {
    std::fprintf(stderr, "stats: usage: twostep_cli stats <host:port> [--timeout-ms T]\n");
    return 1;
  }
  const long timeout_ms = args.get_int("timeout-ms", 5'000);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  const int fd = dial_deadline("stats", *ep, deadline);
  if (fd < 0) return 1;

  const std::vector<std::uint8_t> frame = transport::make_frame(
      transport::FrameKind::kStatsRequest, codec::encode(codec::StatsRequest{1}));
  int rc = 1;
  const bool got = send_and_await(fd, frame, deadline, [&](const auto& f) {
    if (f.kind != transport::FrameKind::kStatsReply) return false;
    if (const auto reply = codec::decode_stats_reply(f.payload)) {
      std::printf("%s\n", reply->json.c_str());
      rc = 0;
    } else {
      std::fprintf(stderr, "stats: malformed reply\n");
    }
    return true;
  });
  ::close(fd);
  if (!got)
    std::fprintf(stderr, "stats: no reply from %s within %ld ms\n", ep->to_string().c_str(),
                 timeout_ms);
  return got ? rc : 1;
}

/// Shared body of `join` and `leave`: dials a live member, sends one
/// kConfigCmd frame, and blocks until the node acknowledges the change
/// *committed* (the ClientReply fires when the config handle's slot
/// decides) or the deadline passes.
int run_config_change(const char* who, const rsm::ConfigChange& change, const Args& args) {
  const std::string target =
      args.positional().empty() ? args.get("connect") : args.positional().front();
  const auto ep = parse_endpoint(target);
  if (!ep) {
    std::fprintf(stderr, "%s: need a live member to submit through: %s <host:port> ...\n",
                 who, who);
    return 1;
  }
  const long timeout_ms = args.get_int("timeout-ms", 10'000);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  const int fd = dial_deadline(who, *ep, deadline);
  if (fd < 0) return 1;

  const std::int64_t id = 1;  // one command per connection; any nonzero id correlates
  const std::vector<std::uint8_t> frame = transport::make_frame(
      transport::FrameKind::kConfigCmd, codec::encode(codec::ConfigCommand{id, change}));
  bool ok = false;
  std::int32_t slot = -1;
  const bool got = send_and_await(fd, frame, deadline, [&](const auto& f) {
    if (f.kind != transport::FrameKind::kClientReply) return false;
    const auto reply = codec::decode_client_reply(f.payload);
    if (!reply || reply->id != id) return false;
    ok = reply->ok;
    slot = reply->slot;
    return true;
  });
  ::close(fd);
  if (!got) {
    std::fprintf(stderr, "%s: no commit acknowledgement from %s within %ld ms\n", who,
                 ep->to_string().c_str(), timeout_ms);
    return 1;
  }
  if (!ok) {
    std::fprintf(stderr,
                 "%s: %s rejected the change (protocol not reconfigurable, or bad replica "
                 "id)\n",
                 who, ep->to_string().c_str());
    return 1;
  }
  std::printf("%s: replica %d %s, config change committed at slot %d\n", who, change.replica,
              change.op == rsm::ConfigChange::Op::kAdd ? "added" : "removed", slot);
  return 0;
}

int cmd_join(const Args& args) {
  const int replica = static_cast<int>(args.get_int("replica", -1));
  const auto addr = parse_endpoint(args.get("address"));
  if (replica < 0 || !addr) {
    std::fprintf(stderr,
                 "join: usage: twostep_cli join <host:port> --replica I --address H:P "
                 "[--timeout-ms T]\n"
                 "      <host:port> is any live member; --address is the joiner's listen "
                 "endpoint (a `serve` started with --id N --listen H:P)\n");
    return 1;
  }
  rsm::ConfigChange change;
  change.op = rsm::ConfigChange::Op::kAdd;
  change.replica = replica;
  change.host = addr->host;
  change.port = addr->port;
  return run_config_change("join", change, args);
}

int cmd_leave(const Args& args) {
  const int replica = static_cast<int>(args.get_int("replica", -1));
  if (replica < 0) {
    std::fprintf(stderr,
                 "leave: usage: twostep_cli leave <host:port> --replica I [--timeout-ms T]\n");
    return 1;
  }
  rsm::ConfigChange change;
  change.op = rsm::ConfigChange::Op::kRemove;
  change.replica = replica;
  return run_config_change("leave", change, args);
}

void usage() {
  std::fprintf(stderr,
               "usage: twostep_cli "
               "<bounds|run|attack|fuzz|chaos|sweep|localcluster|chaossoak|loadgen|serve"
               "|client|tracemerge|stats|join|leave>"
               " [flags]\n"
               "see the header of tools/twostep_cli.cpp for the full flag list\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string cmd = argv[1];
  const Args args{argc, argv};
  if (cmd == "bounds") return cmd_bounds();
  if (cmd == "run") return cmd_run(args);
  if (cmd == "attack") return cmd_attack(args);
  if (cmd == "fuzz") return cmd_fuzz(args);
  if (cmd == "chaos") return cmd_chaos(args);
  if (cmd == "sweep") return cmd_sweep(args);
  if (cmd == "localcluster") return cmd_localcluster(args);
  if (cmd == "chaossoak") return cmd_chaossoak(args);
  if (cmd == "loadgen") return cmd_loadgen(args);
  if (cmd == "serve") return cmd_serve(args);
  if (cmd == "client") return cmd_client(args);
  if (cmd == "tracemerge") return cmd_tracemerge(args);
  if (cmd == "stats") return cmd_stats(args);
  if (cmd == "join") return cmd_join(args);
  if (cmd == "leave") return cmd_leave(args);
  usage();
  return 1;
}
