// Tests for the replicated state machine: proxy commits, contiguous
// in-order application, slot contention between proxies, crash tolerance,
// and identical logs under randomized partial synchrony.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "consensus/scenario.hpp"
#include "net/latency.hpp"
#include "rsm/rsm.hpp"

namespace twostep::rsm {
namespace {

using consensus::ProcessId;
using consensus::SystemConfig;

constexpr sim::Tick kDelta = 100;

using Runner = consensus::ScenarioRunner<RsmProcess, Options>;

std::unique_ptr<Runner> make_rsm(SystemConfig cfg, std::unique_ptr<net::LatencyModel> model,
                                 std::uint64_t seed = 1) {
  Options options;
  options.delta = model->delta();
  return std::make_unique<Runner>(cfg, std::move(model), options, seed);
}

std::unique_ptr<Runner> make_sync_rsm(SystemConfig cfg) {
  return make_rsm(cfg, std::make_unique<net::SynchronousRounds>(kDelta));
}

TEST(Rsm, SingleCommandCommitsAtProxyInTwoDelays) {
  // The paper's motivation: the client's proxy decides fast.
  const SystemConfig cfg{5, 2, 2};  // object bound for e=2, f=2
  auto r = make_sync_rsm(cfg);
  sim::Tick committed_at = -1;
  std::int32_t committed_slot = -1;
  r->cluster().process(0).on_commit = [&](Command, sim::Tick, std::int32_t slot) {
    committed_at = r->cluster().now();
    committed_slot = slot;
  };
  r->cluster().start_all();
  r->cluster().process(0).submit(42);
  r->cluster().run();
  EXPECT_EQ(committed_at, 2 * kDelta);
  EXPECT_EQ(committed_slot, 0);
}

TEST(Rsm, AllReplicasApplyTheCommand) {
  const SystemConfig cfg{5, 2, 2};
  auto r = make_sync_rsm(cfg);
  r->cluster().start_all();
  r->cluster().process(2).submit(7);
  r->cluster().run();
  for (ProcessId p = 0; p < cfg.n; ++p) {
    EXPECT_EQ(r->cluster().process(p).applied_prefix(), 1) << "p" << p;
    EXPECT_EQ(RsmProcess::command_payload(*r->cluster().process(p).decision(0)), 7);
    EXPECT_EQ(RsmProcess::command_proxy(*r->cluster().process(p).decision(0)), 2);
  }
}

TEST(Rsm, SameProxyCommandsApplyInSubmissionOrder) {
  const SystemConfig cfg{5, 2, 2};
  auto r = make_sync_rsm(cfg);
  std::vector<std::int64_t> applied;
  r->cluster().process(0).on_apply = [&](std::int32_t, Command cmd) {
    applied.push_back(RsmProcess::command_payload(cmd));
  };
  r->cluster().start_all();
  for (std::int64_t k = 1; k <= 5; ++k) r->cluster().process(0).submit(k);
  r->cluster().run();
  EXPECT_EQ(applied, (std::vector<std::int64_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(r->cluster().process(0).pending_own_commands(), 0);
}

TEST(Rsm, ContendingProxiesLoserResubmits) {
  const SystemConfig cfg{5, 2, 2};
  auto r = make_sync_rsm(cfg);
  r->cluster().start_all();
  r->cluster().process(0).submit(100);
  r->cluster().process(1).submit(200);  // same slot 0: one must lose
  r->cluster().run();
  // Both commands end up in the log, in the same order at every replica.
  std::vector<std::vector<std::int64_t>> logs(static_cast<std::size_t>(cfg.n));
  for (ProcessId p = 0; p < cfg.n; ++p) {
    auto& proc = r->cluster().process(p);
    EXPECT_GE(proc.applied_prefix(), 2) << "p" << p;
    for (std::int32_t s = 0; s < proc.applied_prefix(); ++s)
      logs[static_cast<std::size_t>(p)].push_back(
          RsmProcess::command_payload(*proc.decision(s)));
    EXPECT_EQ(logs[static_cast<std::size_t>(p)], logs[0]) << "p" << p;
  }
  // Exactly the two payloads, no duplicates (modulo proxy no-shows).
  std::map<std::int64_t, int> counts;
  for (std::int64_t v : logs[0]) ++counts[v];
  EXPECT_EQ(counts[100], 1);
  EXPECT_EQ(counts[200], 1);
}

TEST(Rsm, ProgressDespiteECrashes) {
  const SystemConfig cfg{5, 2, 2};
  auto r = make_sync_rsm(cfg);
  r->cluster().crash(3);
  r->cluster().crash(4);
  r->cluster().start_all();
  sim::Tick committed_at = -1;
  r->cluster().process(0).on_commit = [&](Command, sim::Tick, std::int32_t) {
    committed_at = r->cluster().now();
  };
  r->cluster().process(0).submit(9);
  r->cluster().run();
  // Still two-step at the proxy: the object protocol tolerates e = 2
  // crashes on the fast path with only n = 5.
  EXPECT_EQ(committed_at, 2 * kDelta);
}

TEST(Rsm, PipelineManyCommandsFromAllProxies) {
  const SystemConfig cfg{5, 2, 2};
  auto r = make_sync_rsm(cfg);
  r->cluster().start_all();
  int committed = 0;
  for (ProcessId p = 0; p < cfg.n; ++p) {
    r->cluster().process(p).on_commit = [&](Command, sim::Tick, std::int32_t) { ++committed; };
  }
  int next_payload = 1;
  for (int round = 0; round < 4; ++round)
    for (ProcessId p = 0; p < cfg.n; ++p)
      r->cluster().process(p).submit(next_payload++);
  r->cluster().run();
  EXPECT_EQ(committed, 20);
  // All replicas applied the same 20-command log.
  const auto prefix = r->cluster().process(0).applied_prefix();
  EXPECT_GE(prefix, 20);
  for (ProcessId p = 1; p < cfg.n; ++p) {
    ASSERT_EQ(r->cluster().process(p).applied_prefix(), prefix);
    for (std::int32_t s = 0; s < prefix; ++s)
      EXPECT_EQ(r->cluster().process(p).decision(s), r->cluster().process(0).decision(s));
  }
}

class RsmPartialSynchrony : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RsmPartialSynchrony, LogsConvergeAcrossSeeds) {
  const SystemConfig cfg{5, 2, 2};
  auto r = make_rsm(cfg, std::make_unique<net::PartialSynchrony>(1500, kDelta, 1000),
                    GetParam());
  r->cluster().start_all();
  int committed = 0;
  for (ProcessId p = 0; p < cfg.n; ++p)
    r->cluster().process(p).on_commit = [&](Command, sim::Tick, std::int32_t) { ++committed; };
  std::int64_t payload = 1;
  for (ProcessId p = 0; p < cfg.n; ++p) {
    r->cluster().process(p).submit(payload++);
    r->cluster().process(p).submit(payload++);
  }
  r->cluster().crash_at(400, 4);
  r->cluster().run();
  // p4's commands may be lost with it; every command from a correct proxy
  // commits exactly once.
  EXPECT_GE(committed, 8);
  const auto prefix = r->cluster().process(0).applied_prefix();
  for (ProcessId p = 1; p < 4; ++p) {
    ASSERT_EQ(r->cluster().process(p).applied_prefix(), prefix) << "p" << p;
    for (std::int32_t s = 0; s < prefix; ++s)
      EXPECT_EQ(r->cluster().process(p).decision(s), r->cluster().process(0).decision(s));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RsmPartialSynchrony, ::testing::Range<std::uint64_t>(1, 13));

TEST(Rsm, RejectsOversizedPayload) {
  const SystemConfig cfg{3, 1, 1};
  auto r = make_sync_rsm(cfg);
  EXPECT_THROW(r->cluster().process(0).submit(std::int64_t{1} << 41), std::invalid_argument);
  EXPECT_THROW(r->cluster().process(0).submit(-1), std::invalid_argument);
}

TEST(Rsm, CommandPackingRoundTrips) {
  const Command cmd = (std::int64_t{3} << 40) | 12345;
  EXPECT_EQ(RsmProcess::command_proxy(cmd), 3);
  EXPECT_EQ(RsmProcess::command_payload(cmd), 12345);
}

}  // namespace
}  // namespace twostep::rsm
