// Tests for the replicated state machine: proxy commits, contiguous
// in-order application, slot contention between proxies, crash tolerance,
// and identical logs under randomized partial synchrony.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "consensus/scenario.hpp"
#include "mock_env.hpp"
#include "net/latency.hpp"
#include "rsm/rsm.hpp"

namespace twostep::rsm {
namespace {

using consensus::ProcessId;
using consensus::SystemConfig;

constexpr sim::Tick kDelta = 100;

using Runner = consensus::ScenarioRunner<RsmProcess, Options>;

std::unique_ptr<Runner> make_rsm(SystemConfig cfg, std::unique_ptr<net::LatencyModel> model,
                                 std::uint64_t seed = 1) {
  Options options;
  options.delta = model->delta();
  return std::make_unique<Runner>(cfg, std::move(model), options, seed);
}

std::unique_ptr<Runner> make_sync_rsm(SystemConfig cfg) {
  return make_rsm(cfg, std::make_unique<net::SynchronousRounds>(kDelta));
}

TEST(Rsm, SingleCommandCommitsAtProxyInTwoDelays) {
  // The paper's motivation: the client's proxy decides fast.
  const SystemConfig cfg{5, 2, 2};  // object bound for e=2, f=2
  auto r = make_sync_rsm(cfg);
  sim::Tick committed_at = -1;
  std::int32_t committed_slot = -1;
  r->cluster().process(0).on_commit = [&](Command, sim::Tick, std::int32_t slot) {
    committed_at = r->cluster().now();
    committed_slot = slot;
  };
  r->cluster().start_all();
  r->cluster().process(0).submit(42);
  r->cluster().run();
  EXPECT_EQ(committed_at, 2 * kDelta);
  EXPECT_EQ(committed_slot, 0);
}

TEST(Rsm, AllReplicasApplyTheCommand) {
  const SystemConfig cfg{5, 2, 2};
  auto r = make_sync_rsm(cfg);
  r->cluster().start_all();
  r->cluster().process(2).submit(7);
  r->cluster().run();
  for (ProcessId p = 0; p < cfg.n; ++p) {
    EXPECT_EQ(r->cluster().process(p).applied_prefix(), 1) << "p" << p;
    EXPECT_EQ(RsmProcess::command_payload(*r->cluster().process(p).decision(0)), 7);
    EXPECT_EQ(RsmProcess::command_proxy(*r->cluster().process(p).decision(0)), 2);
  }
}

TEST(Rsm, SameProxyCommandsApplyInSubmissionOrder) {
  const SystemConfig cfg{5, 2, 2};
  auto r = make_sync_rsm(cfg);
  std::vector<std::int64_t> applied;
  r->cluster().process(0).on_apply = [&](std::int32_t, Command cmd) {
    applied.push_back(RsmProcess::command_payload(cmd));
  };
  r->cluster().start_all();
  for (std::int64_t k = 1; k <= 5; ++k) r->cluster().process(0).submit(k);
  r->cluster().run();
  EXPECT_EQ(applied, (std::vector<std::int64_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(r->cluster().process(0).pending_own_commands(), 0);
}

TEST(Rsm, ContendingProxiesLoserResubmits) {
  const SystemConfig cfg{5, 2, 2};
  auto r = make_sync_rsm(cfg);
  r->cluster().start_all();
  r->cluster().process(0).submit(100);
  r->cluster().process(1).submit(200);  // same slot 0: one must lose
  r->cluster().run();
  // Both commands end up in the log, in the same order at every replica.
  std::vector<std::vector<std::int64_t>> logs(static_cast<std::size_t>(cfg.n));
  for (ProcessId p = 0; p < cfg.n; ++p) {
    auto& proc = r->cluster().process(p);
    EXPECT_GE(proc.applied_prefix(), 2) << "p" << p;
    for (std::int32_t s = 0; s < proc.applied_prefix(); ++s)
      logs[static_cast<std::size_t>(p)].push_back(
          RsmProcess::command_payload(*proc.decision(s)));
    EXPECT_EQ(logs[static_cast<std::size_t>(p)], logs[0]) << "p" << p;
  }
  // Exactly the two payloads, no duplicates (modulo proxy no-shows).
  std::map<std::int64_t, int> counts;
  for (std::int64_t v : logs[0]) ++counts[v];
  EXPECT_EQ(counts[100], 1);
  EXPECT_EQ(counts[200], 1);
}

TEST(Rsm, ProgressDespiteECrashes) {
  const SystemConfig cfg{5, 2, 2};
  auto r = make_sync_rsm(cfg);
  r->cluster().crash(3);
  r->cluster().crash(4);
  r->cluster().start_all();
  sim::Tick committed_at = -1;
  r->cluster().process(0).on_commit = [&](Command, sim::Tick, std::int32_t) {
    committed_at = r->cluster().now();
  };
  r->cluster().process(0).submit(9);
  r->cluster().run();
  // Still two-step at the proxy: the object protocol tolerates e = 2
  // crashes on the fast path with only n = 5.
  EXPECT_EQ(committed_at, 2 * kDelta);
}

TEST(Rsm, PipelineManyCommandsFromAllProxies) {
  const SystemConfig cfg{5, 2, 2};
  auto r = make_sync_rsm(cfg);
  r->cluster().start_all();
  int committed = 0;
  for (ProcessId p = 0; p < cfg.n; ++p) {
    r->cluster().process(p).on_commit = [&](Command, sim::Tick, std::int32_t) { ++committed; };
  }
  int next_payload = 1;
  for (int round = 0; round < 4; ++round)
    for (ProcessId p = 0; p < cfg.n; ++p)
      r->cluster().process(p).submit(next_payload++);
  r->cluster().run();
  EXPECT_EQ(committed, 20);
  // All replicas applied the same 20-command log.
  const auto prefix = r->cluster().process(0).applied_prefix();
  EXPECT_GE(prefix, 20);
  for (ProcessId p = 1; p < cfg.n; ++p) {
    ASSERT_EQ(r->cluster().process(p).applied_prefix(), prefix);
    for (std::int32_t s = 0; s < prefix; ++s)
      EXPECT_EQ(r->cluster().process(p).decision(s), r->cluster().process(0).decision(s));
  }
}

class RsmPartialSynchrony : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RsmPartialSynchrony, LogsConvergeAcrossSeeds) {
  const SystemConfig cfg{5, 2, 2};
  auto r = make_rsm(cfg, std::make_unique<net::PartialSynchrony>(1500, kDelta, 1000),
                    GetParam());
  r->cluster().start_all();
  int committed = 0;
  for (ProcessId p = 0; p < cfg.n; ++p)
    r->cluster().process(p).on_commit = [&](Command, sim::Tick, std::int32_t) { ++committed; };
  std::int64_t payload = 1;
  for (ProcessId p = 0; p < cfg.n; ++p) {
    r->cluster().process(p).submit(payload++);
    r->cluster().process(p).submit(payload++);
  }
  r->cluster().crash_at(400, 4);
  r->cluster().run();
  // p4's commands may be lost with it; every command from a correct proxy
  // commits exactly once.
  EXPECT_GE(committed, 8);
  const auto prefix = r->cluster().process(0).applied_prefix();
  for (ProcessId p = 1; p < 4; ++p) {
    ASSERT_EQ(r->cluster().process(p).applied_prefix(), prefix) << "p" << p;
    for (std::int32_t s = 0; s < prefix; ++s)
      EXPECT_EQ(r->cluster().process(p).decision(s), r->cluster().process(0).decision(s));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RsmPartialSynchrony, ::testing::Range<std::uint64_t>(1, 13));

TEST(Rsm, RejectsOversizedPayload) {
  const SystemConfig cfg{3, 1, 1};
  auto r = make_sync_rsm(cfg);
  EXPECT_THROW(r->cluster().process(0).submit(std::int64_t{1} << 41), std::invalid_argument);
  EXPECT_THROW(r->cluster().process(0).submit(-1), std::invalid_argument);
}

TEST(Rsm, CommandPackingRoundTrips) {
  const Command cmd = (std::int64_t{3} << 40) | 12345;
  EXPECT_EQ(RsmProcess::command_proxy(cmd), 3);
  EXPECT_EQ(RsmProcess::command_payload(cmd), 12345);
}

// ---- batching (N3 saturation path) ----------------------------------------

std::unique_ptr<Runner> make_batched_rsm(SystemConfig cfg, int batch_max, sim::Tick linger,
                                         int pipeline_window = 0,
                                         obs::LogHistogram* fill = nullptr) {
  Options options;
  options.delta = kDelta;
  options.batch_max = batch_max;
  options.batch_linger = linger;
  options.pipeline_window = pipeline_window;
  options.batch_fill = fill;
  return std::make_unique<Runner>(cfg, std::make_unique<net::SynchronousRounds>(kDelta),
                                  options, 1);
}

TEST(Rsm, BatchedCommandsShareOneSlotAndApplyInOrder) {
  // Eight commands submitted in the same tick coalesce into one sealed
  // batch: one consensus slot decides, yet every command applies in
  // submission order and commits individually at the proxy.
  const SystemConfig cfg{5, 2, 2};
  obs::LogHistogram fill;
  auto r = make_batched_rsm(cfg, 8, 0, 0, &fill);
  std::vector<std::int64_t> applied;
  std::vector<std::int64_t> committed;
  r->cluster().process(0).on_apply = [&](std::int32_t, Command cmd) {
    applied.push_back(RsmProcess::command_payload(cmd));
  };
  r->cluster().process(0).on_commit = [&](Command cmd, sim::Tick, std::int32_t) {
    committed.push_back(RsmProcess::command_payload(cmd));
  };
  r->cluster().start_all();
  for (std::int64_t k = 1; k <= 8; ++k) r->cluster().process(0).submit(k);
  r->cluster().run();
  EXPECT_EQ(applied, (std::vector<std::int64_t>{1, 2, 3, 4, 5, 6, 7, 8}));
  EXPECT_EQ(committed, (std::vector<std::int64_t>{1, 2, 3, 4, 5, 6, 7, 8}));
  // All eight rode one slot (the handle), not eight.
  EXPECT_EQ(r->cluster().process(0).decided_slots(), 1);
  EXPECT_TRUE(RsmProcess::command_is_batch(*r->cluster().process(0).decision(0)));
  ASSERT_EQ(fill.count(), 1u);
  EXPECT_EQ(fill.max(), 8);
}

TEST(Rsm, BatchedLogsAgreeAcrossReplicasAndProxies) {
  // Two proxies batching concurrently: every replica applies the same
  // expanded command sequence, and the union covers every payload.
  const SystemConfig cfg{5, 2, 2};
  auto r = make_batched_rsm(cfg, 4, 0);
  std::vector<std::vector<std::int64_t>> applied(static_cast<std::size_t>(cfg.n));
  for (ProcessId p = 0; p < cfg.n; ++p)
    r->cluster().process(p).on_apply = [&applied, p](std::int32_t, Command cmd) {
      applied[static_cast<std::size_t>(p)].push_back(RsmProcess::command_payload(cmd));
    };
  r->cluster().start_all();
  for (std::int64_t k = 1; k <= 6; ++k) {
    r->cluster().process(0).submit(100 + k);
    r->cluster().process(1).submit(200 + k);
  }
  r->cluster().run();
  ASSERT_EQ(applied[0].size(), 12u);
  for (ProcessId p = 1; p < cfg.n; ++p) EXPECT_EQ(applied[static_cast<std::size_t>(p)], applied[0]);
  std::set<std::int64_t> seen(applied[0].begin(), applied[0].end());
  EXPECT_EQ(seen.size(), 12u);
}

TEST(Rsm, BatchLingerHoldsTheBatchOpen) {
  // With a linger window, a lone command waits (up to the linger) for
  // company before sealing; a second submission inside the window shares
  // its slot.
  const SystemConfig cfg{5, 2, 2};
  auto r = make_batched_rsm(cfg, 8, 3 * kDelta);
  r->cluster().start_all();
  r->cluster().process(0).submit(1);
  EXPECT_EQ(r->cluster().process(0).open_batch_size(), 1);
  r->cluster().process(0).submit(2);
  EXPECT_EQ(r->cluster().process(0).open_batch_size(), 2);
  r->cluster().run();
  EXPECT_EQ(r->cluster().process(0).decided_slots(), 1);
  EXPECT_EQ(r->cluster().process(0).applied_prefix(), 1);
  EXPECT_EQ(r->cluster().process(0).open_batch_size(), 0);
}

TEST(Rsm, BatchingTightensThePayloadLimit) {
  // Bit 39 flags batch/config handles, so the payload cap is 2^39-1 with
  // or without batching (config handles can occupy a slot either way).
  const SystemConfig cfg{3, 1, 1};
  auto r = make_batched_rsm(cfg, 8, 0);
  EXPECT_EQ(r->cluster().process(0).max_payload(), (std::int64_t{1} << 39) - 1);
  EXPECT_THROW(r->cluster().process(0).submit(std::int64_t{1} << 39), std::invalid_argument);
  auto plain = make_sync_rsm(cfg);
  EXPECT_EQ(plain->cluster().process(0).max_payload(), (std::int64_t{1} << 39) - 1);
}

TEST(Rsm, DecideMessagesCarryBatchContentsBeforeDecides) {
  // Anti-entropy: a peer that receives a Decide for a batch handle it
  // cannot expand would stall, so decide_messages() must lead with the
  // handle's contents.
  const SystemConfig cfg{5, 2, 2};
  auto r = make_batched_rsm(cfg, 4, 0);
  r->cluster().start_all();
  for (std::int64_t k = 1; k <= 3; ++k) r->cluster().process(0).submit(k);
  r->cluster().run();
  const auto msgs = r->cluster().process(0).decide_messages();
  ASSERT_FALSE(msgs.empty());
  bool seen_slot = false;
  int contents = 0;
  for (const auto& m : msgs) {
    if (std::holds_alternative<BatchContentMsg>(m)) {
      EXPECT_FALSE(seen_slot) << "batch contents must precede every Decide";
      ++contents;
    } else if (std::holds_alternative<SlotMsg>(m)) {
      seen_slot = true;
    }
  }
  EXPECT_GE(contents, 1);
  EXPECT_TRUE(seen_slot);
}

// ---- slot pipelining -------------------------------------------------------

std::vector<std::pair<std::int32_t, std::int64_t>> run_window(const SystemConfig& cfg,
                                                              int window) {
  auto r = make_batched_rsm(cfg, 1, 0, window);
  r->cluster().start_all();
  for (std::int64_t k = 1; k <= 6; ++k) r->cluster().process(0).submit(k);
  r->cluster().run();
  std::vector<std::pair<std::int32_t, std::int64_t>> log;
  auto& proc = r->cluster().process(0);
  for (std::int32_t s = 0; s < proc.applied_prefix(); ++s)
    log.emplace_back(s, RsmProcess::command_payload(*proc.decision(s)));
  return log;
}

TEST(Rsm, PipelineWindowOneDegeneratesToUnpipelined) {
  // window=1 (one own undecided slot at a time) must produce the identical
  // applied log to window=0 (the unbounded pre-window behavior) for a
  // single-proxy stream: same slots, same commands, same order.
  const SystemConfig cfg{5, 2, 2};
  const auto unbounded = run_window(cfg, 0);
  const auto serialized = run_window(cfg, 1);
  ASSERT_EQ(unbounded.size(), 6u);
  EXPECT_EQ(serialized, unbounded);
}

TEST(Rsm, PipelineWindowBoundsOwnSlotsInFlight) {
  // With window=2 and six instantaneous submissions, at most two own slots
  // are ever proposed-but-undecided; the rest queue and still all commit.
  const SystemConfig cfg{5, 2, 2};
  auto r = make_batched_rsm(cfg, 1, 0, 2);
  int committed = 0;
  r->cluster().process(0).on_commit = [&](Command, sim::Tick, std::int32_t) { ++committed; };
  r->cluster().start_all();
  for (std::int64_t k = 1; k <= 6; ++k) r->cluster().process(0).submit(k);
  // Before anything decides, only the window's worth may occupy slots.
  EXPECT_EQ(r->cluster().process(0).pending_own_commands(), 6);
  r->cluster().run();
  EXPECT_EQ(committed, 6);
  EXPECT_EQ(r->cluster().process(0).applied_prefix(), 6);
  EXPECT_EQ(r->cluster().process(0).pending_own_commands(), 0);
}

// ---- membership reconfiguration through the log ----

TEST(Rsm, ConfigChangeCreatesTheSameEpochOnEveryReplica) {
  const SystemConfig cfg{5, 2, 2};
  auto r = make_sync_rsm(cfg);
  std::int32_t config_slot = -1;
  r->cluster().process(0).on_config = [&](std::int32_t slot, const ConfigChange& change,
                                          const ConfigEpoch& epoch) {
    config_slot = slot;
    EXPECT_EQ(change.op, ConfigChange::Op::kAdd);
    EXPECT_EQ(change.replica, 5);
    EXPECT_EQ(epoch.version, 1);
  };
  r->cluster().start_all();
  r->cluster().process(0).submit(7);
  // NB: the sim cluster cannot physically grow, so nothing is proposed
  // after the add (a post-boundary slot would broadcast to the absent
  // replica 5); the live LiveReconfig tests drive traffic across an add.
  r->cluster().process(0).submit_config({ConfigChange::Op::kAdd, 5, "replica5", 7105});
  r->cluster().run();
  ASSERT_GE(config_slot, 0);
  for (ProcessId p = 0; p < cfg.n; ++p) {
    auto& proc = r->cluster().process(p);
    const auto& epochs = proc.config_epochs();
    ASSERT_EQ(epochs.size(), 2u) << "p" << p;
    EXPECT_EQ(epochs[0].version, 0) << "p" << p;
    EXPECT_EQ(epochs[0].universe, cfg.n) << "p" << p;
    EXPECT_EQ(epochs[1].version, 1) << "p" << p;
    EXPECT_EQ(epochs[1].universe, cfg.n + 1) << "p" << p;
    // A change decided in slot k governs from slot k+1.
    EXPECT_EQ(epochs[1].boundary, config_slot + 1) << "p" << p;
    EXPECT_EQ(proc.governing_version(config_slot), 0) << "p" << p;
    EXPECT_EQ(proc.governing_version(config_slot + 1), 1) << "p" << p;
    EXPECT_TRUE(std::find(epochs[1].members.begin(), epochs[1].members.end(), 5) !=
                epochs[1].members.end())
        << "p" << p;
    // The client command applied; the config handle itself never enters
    // the executor log.
    EXPECT_EQ(proc.applied_entries().size(), 1u) << "p" << p;
    for (const auto& [slot, cmd] : proc.applied_entries())
      EXPECT_FALSE(RsmProcess::command_is_config(cmd)) << "p" << p;
  }
}

TEST(Rsm, RemovalKeepsTheUniverseAndShrinksMembership) {
  const SystemConfig cfg{5, 2, 2};
  auto r = make_sync_rsm(cfg);
  r->cluster().start_all();
  r->cluster().process(0).submit_config({ConfigChange::Op::kRemove, 4, "", 0});
  r->cluster().process(1).submit(11);  // post-change traffic still commits
  r->cluster().run();
  for (ProcessId p = 0; p < cfg.n; ++p) {
    auto& proc = r->cluster().process(p);
    const auto& epochs = proc.config_epochs();
    ASSERT_EQ(epochs.size(), 2u) << "p" << p;
    EXPECT_EQ(proc.config_version(), 1) << "p" << p;
    // The universe only grows: the removed replica is treated as crashed,
    // not erased from the quorum arithmetic.
    EXPECT_EQ(epochs[1].universe, cfg.n) << "p" << p;
    EXPECT_TRUE(std::find(epochs[1].members.begin(), epochs[1].members.end(), 4) ==
                epochs[1].members.end())
        << "p" << p;
    EXPECT_EQ(epochs[1].members.size(), static_cast<std::size_t>(cfg.n - 1)) << "p" << p;
  }
  // The log still serves client commands after the change.
  EXPECT_EQ(r->cluster().process(0).applied_entries().size(), 1u);
}

TEST(Rsm, CrossEpochSlotFramesAreDropped) {
  // A frame stamped with the wrong governing version for its slot must be
  // ignored outright — a quorum may only count voters of the same epoch.
  testing::MockEnv<Msg> env(1, 5);
  Options options;
  options.delta = kDelta;
  RsmProcess proc(env, SystemConfig{5, 2, 2}, options);
  proc.start();
  env.clear_sent();
  // Governing version of slot 0 at genesis is 0: a stale/future stamp is
  // dropped without a reply, the correct stamp draws the 1B answer.
  proc.on_message(0, Msg{SlotMsg{0, 1, core::Message{core::OneAMsg{10}}}});
  EXPECT_TRUE(env.sent().empty());
  proc.on_message(0, Msg{SlotMsg{0, 0, core::Message{core::OneAMsg{10}}}});
  EXPECT_FALSE(env.sent().empty());
}

TEST(Rsm, SnapshotStateCarriesTheConfigLog) {
  // A joiner installs a snapshot and must come out knowing the membership:
  // the full epoch log travels and on_config fires for each adopted epoch.
  const SystemConfig cfg{5, 2, 2};
  auto r = make_sync_rsm(cfg);
  r->cluster().start_all();
  r->cluster().process(0).submit(1);
  // No traffic after the add: the sim cluster cannot grow (see above).
  r->cluster().process(0).submit_config({ConfigChange::Op::kAdd, 5, "replica5", 7105});
  r->cluster().run();
  const SnapshotState s = r->cluster().process(0).snapshot_state();
  ASSERT_EQ(s.epochs.size(), 2u);
  EXPECT_EQ(s.epochs[1].version, 1);
  EXPECT_EQ(s.epochs[1].change.replica, 5);
  EXPECT_EQ(s.epochs[1].change.host, "replica5");
  EXPECT_EQ(s.epochs[1].change.port, 7105);

  testing::MockEnv<Msg> env(5, 5);
  Options options;
  options.delta = kDelta;
  RsmProcess joiner(env, cfg, options);
  joiner.start();
  std::vector<std::int32_t> adopted_versions;
  joiner.on_config = [&](std::int32_t, const ConfigChange&, const ConfigEpoch& epoch) {
    adopted_versions.push_back(epoch.version);
  };
  joiner.install_snapshot_state(s);
  EXPECT_EQ(adopted_versions, (std::vector<std::int32_t>{1}));
  ASSERT_EQ(joiner.config_epochs().size(), 2u);
  EXPECT_EQ(joiner.config_version(), 1);
  EXPECT_EQ(joiner.config_epochs()[1].universe, cfg.n + 1);
  // The applied log came with it, slot-aligned with the donor's.
  EXPECT_EQ(joiner.applied_entries(), r->cluster().process(0).applied_entries());
}

}  // namespace
}  // namespace twostep::rsm
