// WAL framing, torn-tail recovery and the per-protocol Durable traits.
//
// The corruption tests write real bytes through the real file API and then
// damage the file the way a crash (torn tail) or bit rot (CRC mismatch)
// would, asserting the open-time scan keeps exactly the trustworthy prefix.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/two_step.hpp"
#include "fastpaxos/fast_paxos.hpp"
#include "mock_env.hpp"
#include "obs/metrics.hpp"
#include "storage/durable.hpp"
#include "storage/wal.hpp"

namespace twostep {
namespace {

using storage::Wal;
using storage::WalOptions;

/// Fresh file path in a per-test temp directory, cleaned up on destruction.
class TempDir {
 public:
  TempDir() {
    std::string tmpl = (std::filesystem::temp_directory_path() / "twostep-wal-XXXXXX").string();
    dir_ = ::mkdtemp(tmpl.data());
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string file(const std::string& name) const { return dir_ + "/" + name; }

 private:
  std::string dir_;
};

std::vector<std::uint8_t> bytes(std::initializer_list<int> vals) {
  std::vector<std::uint8_t> out;
  for (const int v : vals) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

void append_raw(const std::string& path, const std::vector<std::uint8_t>& tail) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::write(fd, tail.data(), tail.size()), static_cast<ssize_t>(tail.size()));
  ::close(fd);
}

void flip_byte(const std::string& path, off_t offset) {
  const int fd = ::open(path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  std::uint8_t b = 0;
  ASSERT_EQ(::pread(fd, &b, 1, offset), 1);
  b ^= 0xFF;
  ASSERT_EQ(::pwrite(fd, &b, 1, offset), 1);
  ::close(fd);
}

TEST(WalTest, RoundTripsRecordsAcrossReopen) {
  TempDir tmp;
  const std::string path = tmp.file("a.wal");
  const std::vector<std::vector<std::uint8_t>> records = {
      bytes({1, 2, 3}), bytes({}), bytes({0xFF, 0x00, 0x80, 0x7F}), bytes({42})};
  {
    Wal wal(path, WalOptions{false});
    EXPECT_TRUE(wal.recovered().empty());
    for (const auto& r : records) wal.append(r);
    wal.sync();
    EXPECT_EQ(wal.appends(), records.size());
    EXPECT_EQ(wal.syncs(), 1u);
  }
  Wal reopened(path, WalOptions{false});
  EXPECT_EQ(reopened.recovered(), records);
  EXPECT_EQ(reopened.truncated_bytes(), 0u);
}

TEST(WalTest, UnsyncedBufferIsFlushedByTheDestructor) {
  TempDir tmp;
  const std::string path = tmp.file("a.wal");
  {
    Wal wal(path, WalOptions{false});
    wal.append(bytes({9, 9, 9}));
    // No explicit sync: the destructor writes best-effort.
  }
  Wal reopened(path, WalOptions{false});
  ASSERT_EQ(reopened.recovered().size(), 1u);
  EXPECT_EQ(reopened.recovered()[0], bytes({9, 9, 9}));
}

TEST(WalTest, TornTailIsTruncatedOnOpen) {
  TempDir tmp;
  const std::string path = tmp.file("a.wal");
  {
    Wal wal(path, WalOptions{false});
    wal.append(bytes({1, 2, 3}));
    wal.append(bytes({4, 5}));
    wal.sync();
  }
  // A crash mid-write leaves a partial record: a header promising 100
  // payload bytes with only 3 present.
  append_raw(path, bytes({100, 0, 0, 0, 0xAA, 0xBB, 0xCC, 0xDD, 7, 7, 7}));
  const auto torn_size = std::filesystem::file_size(path);

  Wal reopened(path, WalOptions{false});
  ASSERT_EQ(reopened.recovered().size(), 2u);
  EXPECT_EQ(reopened.recovered()[0], bytes({1, 2, 3}));
  EXPECT_EQ(reopened.recovered()[1], bytes({4, 5}));
  EXPECT_EQ(reopened.truncated_bytes(), 11u);
  // The file itself was cut back, so the next open is clean.
  EXPECT_EQ(std::filesystem::file_size(path), torn_size - 11);
  // And the log keeps working after recovery.
  reopened.append(bytes({6}));
  reopened.sync();
  Wal again(path, WalOptions{false});
  ASSERT_EQ(again.recovered().size(), 3u);
  EXPECT_EQ(again.recovered()[2], bytes({6}));
  EXPECT_EQ(again.truncated_bytes(), 0u);
}

TEST(WalTest, CrcCorruptionDiscardsTheRecordAndEverythingAfterIt) {
  TempDir tmp;
  const std::string path = tmp.file("a.wal");
  {
    Wal wal(path, WalOptions{false});
    wal.append(bytes({1, 1, 1, 1}));  // record 0: offset 0, 8-byte header
    wal.append(bytes({2, 2, 2, 2}));  // record 1: offset 12
    wal.append(bytes({3, 3, 3, 3}));  // record 2: offset 24
    wal.sync();
  }
  // Rot one payload byte of record 1.  Record 2 still frames correctly,
  // but nothing after the first corruption can be trusted.
  flip_byte(path, 12 + 8);

  Wal reopened(path, WalOptions{false});
  ASSERT_EQ(reopened.recovered().size(), 1u);
  EXPECT_EQ(reopened.recovered()[0], bytes({1, 1, 1, 1}));
  EXPECT_EQ(reopened.truncated_bytes(), 24u);  // records 1 and 2
}

TEST(WalTest, ImplausibleLengthIsTreatedAsCorruption) {
  TempDir tmp;
  const std::string path = tmp.file("a.wal");
  {
    Wal wal(path, WalOptions{false});
    wal.append(bytes({5}));
    wal.sync();
  }
  // A "record" whose length exceeds kMaxRecordBytes, followed by plenty of
  // bytes: the scan must refuse to allocate/accept it.
  std::vector<std::uint8_t> evil = {0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0};
  evil.resize(evil.size() + 64, 0xEE);
  append_raw(path, evil);

  Wal reopened(path, WalOptions{false});
  ASSERT_EQ(reopened.recovered().size(), 1u);
  EXPECT_EQ(reopened.truncated_bytes(), 72u);
}

TEST(WalTest, Crc32MatchesKnownVector) {
  // IEEE CRC-32 of "123456789" is 0xCBF43926 — pins the polynomial and
  // reflection so the on-disk format never silently changes.
  const std::string s = "123456789";
  EXPECT_EQ(storage::crc32({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()}),
            0xCBF43926u);
}

// ---- Durable traits ----

core::Options core_options() {
  core::Options options;
  options.mode = core::Mode::kObject;
  options.delta = 100;
  options.leader_of = [] { return consensus::ProcessId{0}; };
  return options;
}

TEST(DurableTest, CaptureOnlyAppendsWhenAcceptorStateChanged) {
  TempDir tmp;
  Wal wal(tmp.file("a.wal"), WalOptions{false});
  const consensus::SystemConfig config(3, 1, 1);
  testing::MockEnv<core::Message> env(1, config.n);
  core::TwoStepProcess proc(env, config, core_options());
  storage::Durable<core::TwoStepProcess> durable;

  proc.start();
  ASSERT_TRUE(durable.capture(proc, wal));  // initial state is new to the log
  EXPECT_FALSE(durable.capture(proc, wal));  // unchanged: no append
  const std::uint64_t before = wal.appends();

  // A fast vote changes (val, proposer): must be captured.
  proc.on_message(0, core::Message{core::ProposeMsg{consensus::Value{7}}});
  EXPECT_TRUE(durable.capture(proc, wal));
  EXPECT_EQ(wal.appends(), before + 1);
  EXPECT_FALSE(durable.capture(proc, wal));
}

TEST(DurableTest, ReplayRebuildsTheAcceptorTuple) {
  TempDir tmp;
  const consensus::SystemConfig config(3, 1, 1);
  const std::string path = tmp.file("a.wal");
  core::TwoStepProcess::AcceptorState expected;
  {
    Wal wal(path, WalOptions{false});
    testing::MockEnv<core::Message> env(1, config.n);
    core::TwoStepProcess proc(env, config, core_options());
    storage::Durable<core::TwoStepProcess> durable;
    proc.start();
    proc.on_message(0, core::Message{core::ProposeMsg{consensus::Value{7}}});
    proc.on_message(0, core::Message{core::OneAMsg{3}});
    durable.capture(proc, wal);
    wal.sync();
    expected = proc.acceptor_state();
  }
  Wal wal(path, WalOptions{false});
  testing::MockEnv<core::Message> env(1, config.n);
  core::TwoStepProcess proc(env, config, core_options());
  storage::Durable<core::TwoStepProcess> durable;
  for (const auto& record : wal.recovered()) durable.replay(proc, record);
  EXPECT_EQ(proc.acceptor_state(), expected);
  // Replay primed the change detector: the restored state is not re-logged.
  EXPECT_FALSE(durable.capture(proc, wal));
  // Recovery counters reflect what came back: the promise from OneA(3) and
  // the fast vote from the Propose.
  obs::MetricsRegistry reg;
  durable.note_recovery(proc, reg);
  EXPECT_EQ(reg.counter_value("recover.ballot"), 3u);
  EXPECT_EQ(reg.counter_value("recover.voted"), 1u);
}

TEST(DurableTest, FastPaxosRoundTripsPromiseAndVote) {
  TempDir tmp;
  const consensus::SystemConfig config(4, 1, 1);
  const std::string path = tmp.file("a.wal");
  fastpaxos::FastPaxosProcess::AcceptorState expected;
  {
    Wal wal(path, WalOptions{false});
    testing::MockEnv<fastpaxos::Message> env(2, config.n);
    fastpaxos::Options options;
    options.delta = 100;
    options.leader_of = [] { return consensus::ProcessId{0}; };
    fastpaxos::FastPaxosProcess proc(env, config, options);
    storage::Durable<fastpaxos::FastPaxosProcess> durable;
    proc.start();
    proc.on_message(0, fastpaxos::Message{fastpaxos::PrepareMsg{2}});
    proc.on_message(0, fastpaxos::Message{fastpaxos::AcceptMsg{2, consensus::Value{9}}});
    ASSERT_TRUE(durable.capture(proc, wal));
    wal.sync();
    expected = proc.acceptor_state();
  }
  EXPECT_EQ(expected.bal, 2);
  EXPECT_EQ(expected.vbal, 2);
  Wal wal(path, WalOptions{false});
  testing::MockEnv<fastpaxos::Message> env(2, config.n);
  fastpaxos::Options options;
  options.delta = 100;
  options.leader_of = [] { return consensus::ProcessId{0}; };
  fastpaxos::FastPaxosProcess proc(env, config, options);
  storage::Durable<fastpaxos::FastPaxosProcess> durable;
  for (const auto& record : wal.recovered()) durable.replay(proc, record);
  EXPECT_EQ(proc.acceptor_state(), expected);
  EXPECT_FALSE(durable.capture(proc, wal));
}

TEST(DurableTest, ReplayIgnoresMalformedRecords) {
  TempDir tmp;
  Wal wal(tmp.file("a.wal"), WalOptions{false});
  const consensus::SystemConfig config(3, 1, 1);
  testing::MockEnv<core::Message> env(0, config.n);
  core::TwoStepProcess proc(env, config, core_options());
  storage::Durable<core::TwoStepProcess> durable;
  const auto before = proc.acceptor_state();
  durable.replay(proc, bytes({0xFF, 0xFF, 0xFF}));  // truncated varint soup
  durable.replay(proc, bytes({}));
  EXPECT_EQ(proc.acceptor_state(), before);
}

}  // namespace
}  // namespace twostep
