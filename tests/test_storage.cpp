// WAL framing, segment rotation/compaction, torn-tail recovery, the
// snapshot engine's crash ordering, and the per-protocol Durable traits.
//
// The corruption tests write real bytes through the real file API and then
// damage the files the way a crash (torn tail, interrupted snapshot write)
// or bit rot (CRC mismatch) would, asserting recovery keeps exactly the
// trustworthy state.  The engine tests use EngineOptions::test_hook to
// crash write_snapshot at its two interesting points and prove the
// documented ordering: truncation-before-durability is impossible.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/two_step.hpp"
#include "epaxos/host.hpp"
#include "fastpaxos/fast_paxos.hpp"
#include "mock_env.hpp"
#include "obs/metrics.hpp"
#include "storage/durable.hpp"
#include "storage/engine.hpp"
#include "storage/wal.hpp"

namespace twostep {
namespace {

using storage::Engine;
using storage::EngineOptions;
using storage::Wal;
using storage::WalOptions;

/// Fresh path in a per-test temp directory, cleaned up on destruction.
class TempDir {
 public:
  TempDir() {
    std::string tmpl = (std::filesystem::temp_directory_path() / "twostep-wal-XXXXXX").string();
    dir_ = ::mkdtemp(tmpl.data());
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string file(const std::string& name) const { return dir_ + "/" + name; }

 private:
  std::string dir_;
};

std::vector<std::uint8_t> bytes(std::initializer_list<int> vals) {
  std::vector<std::uint8_t> out;
  for (const int v : vals) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

/// Just the payloads of the recovered records, for easy comparison.
std::vector<std::vector<std::uint8_t>> recovered_bytes(const Wal& wal) {
  std::vector<std::vector<std::uint8_t>> out;
  for (const auto& r : wal.recovered()) out.push_back(r.bytes);
  return out;
}

void append_raw(const std::string& path, const std::vector<std::uint8_t>& tail) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::write(fd, tail.data(), tail.size()), static_cast<ssize_t>(tail.size()));
  ::close(fd);
}

void flip_byte(const std::string& path, off_t offset) {
  const int fd = ::open(path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  std::uint8_t b = 0;
  ASSERT_EQ(::pread(fd, &b, 1, offset), 1);
  b ^= 0xFF;
  ASSERT_EQ(::pwrite(fd, &b, 1, offset), 1);
  ::close(fd);
}

TEST(WalTest, RoundTripsRecordsAcrossReopen) {
  TempDir tmp;
  const std::string dir = tmp.file("wal");
  const std::vector<std::vector<std::uint8_t>> records = {
      bytes({1, 2, 3}), bytes({}), bytes({0xFF, 0x00, 0x80, 0x7F}), bytes({42})};
  {
    Wal wal(dir, WalOptions{false});
    EXPECT_TRUE(wal.recovered().empty());
    for (const auto& r : records) wal.append(r);
    wal.sync();
    EXPECT_EQ(wal.appends(), records.size());
    EXPECT_EQ(wal.syncs(), 1u);
  }
  Wal reopened(dir, WalOptions{false});
  EXPECT_EQ(recovered_bytes(reopened), records);
  EXPECT_EQ(reopened.truncated_bytes(), 0u);
}

TEST(WalTest, UnsyncedBufferIsFlushedByTheDestructor) {
  TempDir tmp;
  const std::string dir = tmp.file("wal");
  {
    Wal wal(dir, WalOptions{false});
    wal.append(bytes({9, 9, 9}));
    // No explicit sync: the destructor writes best-effort.
  }
  Wal reopened(dir, WalOptions{false});
  ASSERT_EQ(reopened.recovered().size(), 1u);
  EXPECT_EQ(reopened.recovered()[0].bytes, bytes({9, 9, 9}));
}

TEST(WalTest, TornTailIsTruncatedOnOpen) {
  TempDir tmp;
  const std::string dir = tmp.file("wal");
  std::string segment1;
  {
    Wal wal(dir, WalOptions{false});
    wal.append(bytes({1, 2, 3}));
    wal.append(bytes({4, 5}));
    wal.sync();
    segment1 = wal.segment_path(wal.active_segment());
  }
  // A crash mid-write leaves a partial record: a header promising 100
  // payload bytes with only 3 present.
  append_raw(segment1, bytes({100, 0, 0, 0, 0xAA, 0xBB, 0xCC, 0xDD, 7, 7, 7}));
  const auto torn_size = std::filesystem::file_size(segment1);

  Wal reopened(dir, WalOptions{false});
  ASSERT_EQ(reopened.recovered().size(), 2u);
  EXPECT_EQ(reopened.recovered()[0].bytes, bytes({1, 2, 3}));
  EXPECT_EQ(reopened.recovered()[1].bytes, bytes({4, 5}));
  EXPECT_EQ(reopened.truncated_bytes(), 11u);
  // The segment itself was cut back, so the next open is clean.
  EXPECT_EQ(std::filesystem::file_size(segment1), torn_size - 11);
  // And the log keeps working after recovery.
  reopened.append(bytes({6}));
  reopened.sync();
  Wal again(dir, WalOptions{false});
  ASSERT_EQ(again.recovered().size(), 3u);
  EXPECT_EQ(again.recovered()[2].bytes, bytes({6}));
  EXPECT_EQ(again.truncated_bytes(), 0u);
}

TEST(WalTest, CrcCorruptionDiscardsTheRecordAndEverythingAfterIt) {
  TempDir tmp;
  const std::string dir = tmp.file("wal");
  std::string segment1;
  {
    Wal wal(dir, WalOptions{false});
    wal.append(bytes({1, 1, 1, 1}));  // record 0: offset 0, 8-byte header
    wal.append(bytes({2, 2, 2, 2}));  // record 1: offset 12
    wal.append(bytes({3, 3, 3, 3}));  // record 2: offset 24
    wal.sync();
    segment1 = wal.segment_path(wal.active_segment());
  }
  // Rot one payload byte of record 1.  Record 2 still frames correctly,
  // but nothing after the first corruption can be trusted.
  flip_byte(segment1, 12 + 8);

  Wal reopened(dir, WalOptions{false});
  ASSERT_EQ(reopened.recovered().size(), 1u);
  EXPECT_EQ(reopened.recovered()[0].bytes, bytes({1, 1, 1, 1}));
  EXPECT_EQ(reopened.truncated_bytes(), 24u);  // records 1 and 2
}

TEST(WalTest, ImplausibleLengthIsTreatedAsCorruption) {
  TempDir tmp;
  const std::string dir = tmp.file("wal");
  std::string segment1;
  {
    Wal wal(dir, WalOptions{false});
    wal.append(bytes({5}));
    wal.sync();
    segment1 = wal.segment_path(wal.active_segment());
  }
  // A "record" whose length exceeds kMaxRecordBytes, followed by plenty of
  // bytes: the scan must refuse to allocate/accept it.
  std::vector<std::uint8_t> evil = {0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0};
  evil.resize(evil.size() + 64, 0xEE);
  append_raw(segment1, evil);

  Wal reopened(dir, WalOptions{false});
  ASSERT_EQ(reopened.recovered().size(), 1u);
  EXPECT_EQ(reopened.truncated_bytes(), 72u);
}

TEST(WalTest, Crc32MatchesKnownVector) {
  // IEEE CRC-32 of "123456789" is 0xCBF43926 — pins the polynomial and
  // reflection so the on-disk format never silently changes.
  const std::string s = "123456789";
  EXPECT_EQ(storage::crc32({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()}),
            0xCBF43926u);
}

// ---- segmentation ----

TEST(WalTest, RotatesOncePastTheSegmentThreshold) {
  TempDir tmp;
  const std::string dir = tmp.file("wal");
  WalOptions options{false};
  options.segment_bytes = 32;  // every record (8-byte header + payload) counts
  Wal wal(dir, options);
  EXPECT_EQ(wal.active_segment(), 1u);
  for (int i = 0; i < 6; ++i) {
    wal.append(bytes({i, i, i, i, i, i, i, i}));  // 16 bytes framed
    wal.sync();                                   // rotation happens on sync
  }
  EXPECT_GT(wal.active_segment(), 1u);
  EXPECT_GT(wal.segment_count(), 1u);

  // Reopen: all records survive, in order, tagged with ascending segments.
  Wal reopened(dir, WalOptions{false});
  ASSERT_EQ(reopened.recovered().size(), 6u);
  for (int i = 0; i < 6; ++i)
    EXPECT_EQ(reopened.recovered()[static_cast<std::size_t>(i)].bytes[0],
              static_cast<std::uint8_t>(i));
  for (std::size_t i = 1; i < 6; ++i)
    EXPECT_GE(reopened.recovered()[i].segment, reopened.recovered()[i - 1].segment);
}

TEST(WalTest, RotateSealsAndTruncateThroughDeletesCoveredSegments) {
  TempDir tmp;
  const std::string dir = tmp.file("wal");
  Wal wal(dir, WalOptions{false});
  wal.append(bytes({1}));
  wal.append(bytes({2}));
  const std::uint64_t barrier = wal.rotate();  // syncs, seals segment 1
  EXPECT_EQ(barrier, 1u);
  EXPECT_EQ(wal.active_segment(), 2u);
  wal.append(bytes({3}));
  wal.sync();

  EXPECT_TRUE(std::filesystem::exists(wal.segment_path(barrier)));
  EXPECT_EQ(wal.truncate_through(barrier), 2u);  // the two sealed records
  EXPECT_EQ(wal.truncated_records(), 2u);
  EXPECT_FALSE(std::filesystem::exists(wal.segment_path(barrier)));
  EXPECT_EQ(wal.first_segment(), 2u);

  // Only the post-barrier record survives a reopen.
  Wal reopened(dir, WalOptions{false});
  ASSERT_EQ(reopened.recovered().size(), 1u);
  EXPECT_EQ(reopened.recovered()[0].bytes, bytes({3}));
}

TEST(WalTest, TruncateThroughNeverDeletesTheActiveSegment) {
  TempDir tmp;
  const std::string dir = tmp.file("wal");
  Wal wal(dir, WalOptions{false});
  wal.append(bytes({1}));
  wal.sync();
  // Asking to truncate through the active segment (or beyond) is a no-op
  // for the active file: the WAL must always retain its append head.
  EXPECT_EQ(wal.truncate_through(wal.active_segment()), 0u);
  EXPECT_TRUE(std::filesystem::exists(wal.segment_path(wal.active_segment())));
  Wal reopened(dir, WalOptions{false});
  ASSERT_EQ(reopened.recovered().size(), 1u);
}

TEST(WalTest, CorruptionInAnEarlySegmentDiscardsAllLaterSegments) {
  TempDir tmp;
  const std::string dir = tmp.file("wal");
  std::string segment1;
  std::string segment2;
  {
    Wal wal(dir, WalOptions{false});
    wal.append(bytes({1, 1, 1, 1}));
    wal.append(bytes({2, 2, 2, 2}));
    wal.rotate();
    wal.append(bytes({3, 3, 3, 3}));
    wal.sync();
    segment1 = wal.segment_path(1);
    segment2 = wal.segment_path(2);
  }
  ASSERT_TRUE(std::filesystem::exists(segment2));
  flip_byte(segment1, 12 + 8);  // rot record 1 of segment 1

  // Nothing past the first corruption can be trusted — not even records in
  // later, individually well-formed segments.
  Wal reopened(dir, WalOptions{false});
  ASSERT_EQ(reopened.recovered().size(), 1u);
  EXPECT_EQ(reopened.recovered()[0].bytes, bytes({1, 1, 1, 1}));
  EXPECT_FALSE(std::filesystem::exists(segment2));
  EXPECT_GT(reopened.truncated_bytes(), 0u);
}

// ---- storage::Engine: snapshots + compaction ----

TEST(EngineTest, SnapshotRoundTripsAndCompactsTheWal) {
  TempDir tmp;
  const std::string dir = tmp.file("store");
  const auto payload = bytes({10, 20, 30, 40});
  {
    Engine engine(dir, EngineOptions{false});
    EXPECT_FALSE(engine.snapshot());
    EXPECT_FALSE(engine.snapshot_corrupt());
    engine.wal().append(bytes({1}));
    engine.wal().append(bytes({2}));
    engine.wal().sync();
    EXPECT_EQ(engine.write_snapshot(payload), 2u);  // both records compacted
    EXPECT_EQ(engine.snapshots_written(), 1u);
    // Records appended after the snapshot belong to the replay tail.
    engine.wal().append(bytes({3}));
    engine.wal().sync();
  }
  Engine reopened(dir, EngineOptions{false});
  ASSERT_TRUE(reopened.snapshot());
  EXPECT_EQ(reopened.snapshot()->payload, payload);
  ASSERT_EQ(reopened.tail().size(), 1u);
  EXPECT_EQ(reopened.tail()[0].bytes, bytes({3}));
  EXPECT_FALSE(reopened.snapshot_corrupt());
}

TEST(EngineTest, SnapshotDueTriggersOnAppendCount) {
  TempDir tmp;
  EngineOptions options{false};
  options.snapshot_every = 3;
  Engine engine(tmp.file("store"), options);
  EXPECT_FALSE(engine.snapshot_due());
  engine.wal().append(bytes({1}));
  engine.wal().append(bytes({2}));
  engine.wal().sync();
  EXPECT_FALSE(engine.snapshot_due());
  engine.wal().append(bytes({3}));
  engine.wal().sync();
  EXPECT_TRUE(engine.snapshot_due());
  engine.write_snapshot(bytes({9}));
  EXPECT_FALSE(engine.snapshot_due());  // counter rearmed
}

TEST(EngineTest, RecoveredTailCountsTowardTheFirstTrigger) {
  TempDir tmp;
  const std::string dir = tmp.file("store");
  {
    Engine engine(dir, EngineOptions{false});
    for (int i = 0; i < 4; ++i) engine.wal().append(bytes({i}));
    engine.wal().sync();
  }
  EngineOptions options{false};
  options.snapshot_every = 3;
  Engine reopened(dir, options);
  // 4 recovered records >= 3: a node rebooted with a long un-snapshotted
  // tail snapshots at the first opportunity instead of waiting for 3 more.
  EXPECT_TRUE(reopened.snapshot_due());
}

TEST(EngineTest, CrashBeforeRenameLeavesThePreviousSnapshotAuthoritative) {
  TempDir tmp;
  const std::string dir = tmp.file("store");
  const auto first = bytes({1, 1, 1});
  {
    Engine engine(dir, EngineOptions{false});
    engine.wal().append(bytes({1}));
    engine.wal().sync();
    engine.write_snapshot(first);
    engine.wal().append(bytes({2}));
    engine.wal().sync();
  }
  {
    // Crash after snapshot.tmp is written but before the rename: the WAL
    // must NOT have been truncated (step 4 never ran), and the old
    // snapshot file is untouched.
    EngineOptions options{false};
    options.test_hook = [](const char* stage) {
      if (std::string_view{stage} == "tmp_written") throw std::runtime_error("crash");
    };
    Engine engine(dir, options);
    EXPECT_THROW(engine.write_snapshot(bytes({2, 2, 2})), std::runtime_error);
  }
  Engine reopened(dir, EngineOptions{false});
  ASSERT_TRUE(reopened.snapshot());
  EXPECT_EQ(reopened.snapshot()->payload, first);   // previous snapshot wins
  ASSERT_EQ(reopened.tail().size(), 1u);            // nothing was truncated
  EXPECT_EQ(reopened.tail()[0].bytes, bytes({2}));
  EXPECT_FALSE(std::filesystem::exists(dir + "/snapshot.tmp"));  // tmp unlinked
}

TEST(EngineTest, CrashAfterRenameRecoversTheNewSnapshotAndFinishesCompaction) {
  TempDir tmp;
  const std::string dir = tmp.file("store");
  const auto second = bytes({2, 2, 2});
  std::uint64_t covered = 0;
  {
    Engine engine(dir, EngineOptions{false});
    engine.wal().append(bytes({1}));
    engine.wal().append(bytes({2}));
    engine.wal().sync();
    // Crash after the rename but before WAL truncation: the new snapshot
    // is durable, the covered segments are still on disk.
    EngineOptions crash{false};
    crash.test_hook = [](const char* stage) {
      if (std::string_view{stage} == "renamed") throw std::runtime_error("crash");
    };
    Engine crasher(dir, crash);
    EXPECT_THROW(crasher.write_snapshot(second), std::runtime_error);
    covered = crasher.wal().first_segment();
  }
  Engine reopened(dir, EngineOptions{false});
  ASSERT_TRUE(reopened.snapshot());
  EXPECT_EQ(reopened.snapshot()->payload, second);  // new snapshot authoritative
  // The covered records never reach the replay tail — a replay can never
  // resurrect state the snapshot already summarizes — and the constructor
  // finished the interrupted truncation.
  EXPECT_TRUE(reopened.tail().empty());
  EXPECT_GT(reopened.snapshot()->covered_segment, 0u);
  EXPECT_FALSE(std::filesystem::exists(reopened.wal().segment_path(covered)));
}

TEST(EngineTest, CorruptSnapshotFallsBackToWalReplay) {
  TempDir tmp;
  const std::string dir = tmp.file("store");
  {
    Engine engine(dir, EngineOptions{false});
    engine.wal().append(bytes({1}));
    engine.wal().sync();
    engine.write_snapshot(bytes({7, 7, 7, 7}));
    engine.wal().append(bytes({5}));
    engine.wal().sync();
  }
  flip_byte(dir + "/snapshot", 9);  // rot one body byte; CRC now mismatches

  Engine reopened(dir, EngineOptions{false});
  EXPECT_FALSE(reopened.snapshot());
  EXPECT_TRUE(reopened.snapshot_corrupt());
  // Recovery degrades to replaying every surviving WAL record.
  ASSERT_EQ(reopened.tail().size(), 1u);
  EXPECT_EQ(reopened.tail()[0].bytes, bytes({5}));
}

// ---- Durable traits ----

core::Options core_options() {
  core::Options options;
  options.mode = core::Mode::kObject;
  options.delta = 100;
  options.leader_of = [] { return consensus::ProcessId{0}; };
  return options;
}

TEST(DurableTest, CaptureOnlyAppendsWhenAcceptorStateChanged) {
  TempDir tmp;
  Wal wal(tmp.file("wal"), WalOptions{false});
  const consensus::SystemConfig config(3, 1, 1);
  testing::MockEnv<core::Message> env(1, config.n);
  core::TwoStepProcess proc(env, config, core_options());
  storage::Durable<core::TwoStepProcess> durable;

  proc.start();
  ASSERT_TRUE(durable.capture(proc, wal));  // initial state is new to the log
  EXPECT_FALSE(durable.capture(proc, wal));  // unchanged: no append
  const std::uint64_t before = wal.appends();

  // A fast vote changes (val, proposer): must be captured.
  proc.on_message(0, core::Message{core::ProposeMsg{consensus::Value{7}}});
  EXPECT_TRUE(durable.capture(proc, wal));
  EXPECT_EQ(wal.appends(), before + 1);
  EXPECT_FALSE(durable.capture(proc, wal));
}

TEST(DurableTest, ReplayRebuildsTheAcceptorTuple) {
  TempDir tmp;
  const consensus::SystemConfig config(3, 1, 1);
  const std::string dir = tmp.file("wal");
  core::TwoStepProcess::AcceptorState expected;
  {
    Wal wal(dir, WalOptions{false});
    testing::MockEnv<core::Message> env(1, config.n);
    core::TwoStepProcess proc(env, config, core_options());
    storage::Durable<core::TwoStepProcess> durable;
    proc.start();
    proc.on_message(0, core::Message{core::ProposeMsg{consensus::Value{7}}});
    proc.on_message(0, core::Message{core::OneAMsg{3}});
    durable.capture(proc, wal);
    wal.sync();
    expected = proc.acceptor_state();
  }
  Wal wal(dir, WalOptions{false});
  testing::MockEnv<core::Message> env(1, config.n);
  core::TwoStepProcess proc(env, config, core_options());
  storage::Durable<core::TwoStepProcess> durable;
  for (const auto& record : wal.recovered()) durable.replay(proc, record.bytes);
  EXPECT_EQ(proc.acceptor_state(), expected);
  // Replay primed the change detector: the restored state is not re-logged.
  EXPECT_FALSE(durable.capture(proc, wal));
  // Recovery counters reflect what came back: the promise from OneA(3) and
  // the fast vote from the Propose.
  obs::MetricsRegistry reg;
  durable.note_recovery(proc, reg);
  EXPECT_EQ(reg.counter_value("recover.ballot"), 3u);
  EXPECT_EQ(reg.counter_value("recover.voted"), 1u);
}

TEST(DurableTest, FastPaxosRoundTripsPromiseAndVote) {
  TempDir tmp;
  const consensus::SystemConfig config(4, 1, 1);
  const std::string dir = tmp.file("wal");
  fastpaxos::FastPaxosProcess::AcceptorState expected;
  {
    Wal wal(dir, WalOptions{false});
    testing::MockEnv<fastpaxos::Message> env(2, config.n);
    fastpaxos::Options options;
    options.delta = 100;
    options.leader_of = [] { return consensus::ProcessId{0}; };
    fastpaxos::FastPaxosProcess proc(env, config, options);
    storage::Durable<fastpaxos::FastPaxosProcess> durable;
    proc.start();
    proc.on_message(0, fastpaxos::Message{fastpaxos::PrepareMsg{2}});
    proc.on_message(0, fastpaxos::Message{fastpaxos::AcceptMsg{2, consensus::Value{9}}});
    ASSERT_TRUE(durable.capture(proc, wal));
    wal.sync();
    expected = proc.acceptor_state();
  }
  EXPECT_EQ(expected.bal, 2);
  EXPECT_EQ(expected.vbal, 2);
  Wal wal(dir, WalOptions{false});
  testing::MockEnv<fastpaxos::Message> env(2, config.n);
  fastpaxos::Options options;
  options.delta = 100;
  options.leader_of = [] { return consensus::ProcessId{0}; };
  fastpaxos::FastPaxosProcess proc(env, config, options);
  storage::Durable<fastpaxos::FastPaxosProcess> durable;
  for (const auto& record : wal.recovered()) durable.replay(proc, record.bytes);
  EXPECT_EQ(proc.acceptor_state(), expected);
  EXPECT_FALSE(durable.capture(proc, wal));
}

TEST(DurableTest, EPaxosRoundTripsCommittedInstances) {
  TempDir tmp;
  const consensus::SystemConfig config(5, 2, 2);
  const std::string dir = tmp.file("wal");
  epaxos::HostOptions host;
  host.protocol.delta = 100;
  const epaxos::InstanceId id{0, 0};
  const epaxos::Command cmd{0, 7};
  {
    Wal wal(dir, WalOptions{false});
    testing::MockEnv<epaxos::Message> env(2, config.n);
    epaxos::EPaxosRsm proc(env, config, host);
    proc.start();
    storage::Durable<epaxos::EPaxosRsm> durable;
    durable.capture(proc, wal);  // drain whatever start() dirtied
    // A peer's Commit lands the instance (committed, then executed).
    proc.on_message(0, epaxos::Message{epaxos::CommitMsg{id, cmd, {}, 1}});
    ASSERT_TRUE(durable.capture(proc, wal));
    EXPECT_FALSE(durable.capture(proc, wal));  // unchanged: no append
    wal.sync();
  }
  Wal wal(dir, WalOptions{false});
  testing::MockEnv<epaxos::Message> env(2, config.n);
  epaxos::EPaxosRsm proc(env, config, host);
  storage::Durable<epaxos::EPaxosRsm> durable;
  std::vector<std::int64_t> applied;
  proc.on_apply = [&](std::int32_t, std::int64_t c) { applied.push_back(c); };
  for (const auto& record : wal.recovered()) durable.replay(proc, record.bytes);
  // Replay re-commits and re-executes from the durable graph.
  EXPECT_EQ(proc.replica().status(id), epaxos::Status::kExecuted);
  EXPECT_EQ(proc.replica().committed_command(id), cmd);
  EXPECT_EQ(applied.size(), 1u);
  // Replay primed the change detector: nothing is re-logged.
  EXPECT_FALSE(durable.capture(proc, wal));
  obs::MetricsRegistry reg;
  durable.note_recovery(proc, reg);
  EXPECT_GE(reg.counter_value("recover.instances"), 1u);
  EXPECT_GE(reg.counter_value("recover.decided"), 1u);
  // Malformed records are ignored, never applied.
  durable.replay(proc, bytes({0xFF, 0xFF, 0xFF}));
  durable.replay(proc, bytes({}));
  EXPECT_EQ(proc.replica().status(id), epaxos::Status::kExecuted);
}

TEST(DurableTest, ReplayIgnoresMalformedRecords) {
  TempDir tmp;
  Wal wal(tmp.file("wal"), WalOptions{false});
  const consensus::SystemConfig config(3, 1, 1);
  testing::MockEnv<core::Message> env(0, config.n);
  core::TwoStepProcess proc(env, config, core_options());
  storage::Durable<core::TwoStepProcess> durable;
  const auto before = proc.acceptor_state();
  durable.replay(proc, bytes({0xFF, 0xFF, 0xFF}));  // truncated varint soup
  durable.replay(proc, bytes({}));
  EXPECT_EQ(proc.acceptor_state(), before);
}

}  // namespace
}  // namespace twostep
