// Unit tests for the simulated network: latency models (incl. the paper's
// Definition 2 round synchrony and the DLS partial-synchrony bound), crash
// semantics, tracing and interception.
#include <gtest/gtest.h>

#include <string>

#include "faults/fault_plan.hpp"
#include "net/latency.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace twostep::net {
namespace {

using consensus::ProcessId;

TEST(SynchronousRounds, DeliversAtNextRoundBoundary) {
  SynchronousRounds m{100};
  util::Rng rng{1};
  EXPECT_EQ(m.delivery_time(0, 0, 1, rng), 100);
  EXPECT_EQ(m.delivery_time(99, 0, 1, rng), 100);
  EXPECT_EQ(m.delivery_time(100, 0, 1, rng), 200);
  EXPECT_EQ(m.delivery_time(150, 0, 1, rng), 200);
  EXPECT_EQ(m.delta(), 100);
}

TEST(SynchronousRounds, RejectsNonPositiveDelta) {
  EXPECT_THROW(SynchronousRounds{0}, std::invalid_argument);
}

TEST(FixedDelay, ConstantDelay) {
  FixedDelay m{7};
  util::Rng rng{1};
  EXPECT_EQ(m.delivery_time(10, 0, 1, rng), 17);
  EXPECT_EQ(m.delta(), 7);
}

TEST(FixedDelay, DelayAboveDeltaRejected) {
  EXPECT_THROW(FixedDelay(10, 5), std::invalid_argument);
}

TEST(PartialSynchrony, RespectsDlsBound) {
  // Every message sent at time t must arrive by max(t, GST) + delta.
  PartialSynchrony m{/*gst=*/1000, /*delta=*/50, /*chaos_max=*/10000};
  util::Rng rng{42};
  for (sim::Tick t : {0, 100, 900, 999}) {
    for (int i = 0; i < 200; ++i) {
      const sim::Tick d = m.delivery_time(t, 0, 1, rng);
      EXPECT_GT(d, t);
      EXPECT_LE(d, 1000 + 50);
    }
  }
}

TEST(PartialSynchrony, FastAfterGst) {
  PartialSynchrony m{1000, 50, 10000};
  util::Rng rng{42};
  for (int i = 0; i < 200; ++i) {
    const sim::Tick d = m.delivery_time(2000, 0, 1, rng);
    EXPECT_GT(d, 2000);
    EXPECT_LE(d, 2050);
  }
}

TEST(WanMatrix, NineRegionsIsConsistent) {
  const WanMatrix m = WanMatrix::nine_regions(0);
  EXPECT_EQ(m.sites(), 9);
  util::Rng rng{1};
  // us-east <-> us-west is ~35ms one way.
  EXPECT_EQ(m.delivery_time(0, 0, 1, rng), 35);
  // delta is the worst link.
  EXPECT_GE(m.delta(), 160);
}

TEST(WanMatrix, JitterBounded) {
  const WanMatrix m = WanMatrix::nine_regions(5);
  util::Rng rng{7};
  for (int i = 0; i < 100; ++i) {
    const sim::Tick d = m.delivery_time(0, 0, 1, rng);
    EXPECT_GE(d, 35);
    EXPECT_LE(d, 40);
  }
}

TEST(WanMatrix, RestrictSelectsSubmatrix) {
  const WanMatrix m = WanMatrix::nine_regions(0);
  const WanMatrix sub = m.restrict({0, 2, 4});  // us-east, eu-west, tokyo
  EXPECT_EQ(sub.sites(), 3);
  util::Rng rng{1};
  EXPECT_EQ(sub.delivery_time(0, 0, 1, rng), 38);   // use -> euw
  EXPECT_EQ(sub.delivery_time(0, 1, 2, rng), 105);  // euw -> jpn
}

TEST(WanMatrix, RejectsBadMatrices) {
  EXPECT_THROW(WanMatrix({}, 0), std::invalid_argument);
  EXPECT_THROW(WanMatrix({{1, 2}}, 0), std::invalid_argument);        // not square
  EXPECT_THROW(WanMatrix({{1, 0}, {1, 1}}, 0), std::invalid_argument);  // zero latency
}

// ---- Network ----

using Net = Network<std::string>;

std::unique_ptr<LatencyModel> fixed(sim::Tick d) { return std::make_unique<FixedDelay>(d); }

TEST(Network, DeliversToHandler) {
  sim::Simulator sim;
  Net net{sim, fixed(10), 3};
  std::string got;
  ProcessId got_from = -1;
  net.set_handler(1, [&](ProcessId from, const std::string& m) {
    got = m;
    got_from = from;
  });
  net.send(0, 1, "hello");
  sim.run();
  EXPECT_EQ(got, "hello");
  EXPECT_EQ(got_from, 0);
  EXPECT_EQ(sim.now(), 10);
}

TEST(Network, SelfSendGoesThroughTheLatencyModel) {
  // Definition 2 semantics: self-addressed messages are messages.
  sim::Simulator sim;
  Net net{sim, fixed(10), 2};
  sim::Tick when = -1;
  net.set_handler(0, [&](ProcessId, const std::string&) { when = sim.now(); });
  net.send(0, 0, "x");
  sim.run();
  EXPECT_EQ(when, 10);
}

TEST(Network, CrashedSenderDropsMessage) {
  sim::Simulator sim;
  Net net{sim, fixed(10), 2};
  bool delivered = false;
  net.set_handler(1, [&](ProcessId, const std::string&) { delivered = true; });
  net.crash(0);
  net.send(0, 1, "x");
  sim.run();
  EXPECT_FALSE(delivered);
}

TEST(Network, CrashedReceiverDropsMessage) {
  sim::Simulator sim;
  Net net{sim, fixed(10), 2};
  bool delivered = false;
  net.set_handler(1, [&](ProcessId, const std::string&) { delivered = true; });
  net.send(0, 1, "x");
  net.crash(1);
  sim.run();
  EXPECT_FALSE(delivered);
}

TEST(Network, CrashAfterSendStillDelivers) {
  // Reliable links: a message handed to the network before the sender's
  // crash is delivered (the paper's runs rely on this: a process decides,
  // sends, and crashes).
  sim::Simulator sim;
  Net net{sim, fixed(10), 2};
  bool delivered = false;
  net.set_handler(1, [&](ProcessId, const std::string&) { delivered = true; });
  net.send(0, 1, "x");
  net.crash(0);
  sim.run();
  EXPECT_TRUE(delivered);
}

TEST(Network, CrashAtScheduledTime) {
  sim::Simulator sim;
  Net net{sim, fixed(10), 2};
  int delivered = 0;
  net.set_handler(1, [&](ProcessId, const std::string&) { ++delivered; });
  net.crash_at(5, 1);
  net.send(0, 1, "early");  // delivery at 10, after crash at 5
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_TRUE(net.crashed(1));
  EXPECT_EQ(net.crashed_count(), 1);
}

TEST(Network, CountsSentAndDelivered) {
  sim::Simulator sim;
  Net net{sim, fixed(10), 3};
  net.set_handler(1, [](ProcessId, const std::string&) {});
  net.set_handler(2, [](ProcessId, const std::string&) {});
  net.crash(2);
  net.send(0, 1, "a");
  net.send(0, 2, "b");
  sim.run();
  EXPECT_EQ(net.messages_sent(), 2u);
  EXPECT_EQ(net.messages_delivered(), 1u);
}

NetworkConfig traced_config() {
  NetworkConfig config;
  config.trace = true;
  return config;
}

TEST(Network, TraceRecordsSendAndDelivery) {
  sim::Simulator sim;
  Net net{sim, fixed(10), 2, 1, traced_config()};
  net.set_handler(1, [](ProcessId, const std::string&) {});
  net.send(0, 1, "traced");
  sim.run();
  ASSERT_EQ(net.trace().size(), 1u);
  const auto& entry = net.trace().front();
  EXPECT_EQ(entry.send_time, 0);
  EXPECT_EQ(entry.deliver_time, 10);
  EXPECT_EQ(entry.payload, "traced");
}

TEST(Network, TraceMarksUndeliveredWithDropReason) {
  sim::Simulator sim;
  Net net{sim, fixed(10), 2, 1, traced_config()};
  net.set_handler(1, [](ProcessId, const std::string&) {});
  net.send(0, 1, "lost");
  net.crash(1);
  sim.run();
  ASSERT_EQ(net.trace().size(), 1u);
  EXPECT_EQ(net.trace().front().deliver_time, -1);
  // The recipient crashed: no longer conflated with "still in flight".
  EXPECT_EQ(net.trace().front().drop, faults::DropReason::kCrashed);
}

TEST(Network, TraceMarksInFlightDistinctFromCrashed) {
  sim::Simulator sim;
  Net net{sim, fixed(10), 2, 1, traced_config()};
  net.set_handler(1, [](ProcessId, const std::string&) {});
  net.send(0, 1, "in-flight");
  // Run no events: the message is sent but the run ends before delivery.
  ASSERT_EQ(net.trace().size(), 1u);
  EXPECT_EQ(net.trace().front().deliver_time, -1);
  EXPECT_EQ(net.trace().front().drop, faults::DropReason::kNone);
}

// A FaultPlan delay rule can pin an absolute delivery time per message,
// overriding the latency model (the adversarial-scheduling hook).
TEST(Network, DelayRuleOverridesDelivery) {
  sim::Simulator sim;
  auto plan = std::make_shared<faults::FaultPlan>();
  plan->delay_rule(faults::typed_delay_rule<std::string>(
      [](sim::Tick, ProcessId, ProcessId, const std::string& m) -> std::optional<sim::Tick> {
        if (m == "slow") return 500;
        return std::nullopt;
      }));
  net::NetworkConfig config;
  config.faults = std::move(plan);
  Net net{sim, fixed(10), 2, 1, std::move(config)};
  sim::Tick when = -1;
  net.set_handler(1, [&](ProcessId, const std::string&) { when = sim.now(); });
  net.send(0, 1, "slow");
  sim.run();
  EXPECT_EQ(when, 500);
  net.send(0, 1, "normal");
  sim.run();
  EXPECT_EQ(when, 510);
}

TEST(Network, RejectsBadProcessIds) {
  sim::Simulator sim;
  Net net{sim, fixed(10), 2};
  EXPECT_THROW(net.send(0, 5, "x"), std::out_of_range);
  EXPECT_THROW(net.crash(-1), std::out_of_range);
}

}  // namespace
}  // namespace twostep::net
