// Tests for geo::LatencyMatrix (the live WAN emulation's data layer):
// construction validation, the nine-region table and its presets, the
// matrix-file parser, placement helpers, and the ChaosInjector contract
// that geo delays are deterministic per directed link.
#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "geo/latency_matrix.hpp"
#include "net/latency.hpp"
#include "transport/chaos.hpp"

namespace twostep::geo {
namespace {

TEST(LatencyMatrix, ValidatesShapeAndCells) {
  EXPECT_THROW(LatencyMatrix({}, {}), std::invalid_argument);
  EXPECT_THROW(LatencyMatrix({"a", "b"}, {{0, 1}}), std::invalid_argument);  // not square
  EXPECT_THROW(LatencyMatrix({"a", "b"}, {{0, 1}, {1}}), std::invalid_argument);
  EXPECT_THROW(LatencyMatrix({"a"}, {{-1}}), std::invalid_argument);  // negative cell
  EXPECT_THROW(LatencyMatrix({"a"}, {{0}}, -1), std::invalid_argument);  // negative jitter
  EXPECT_THROW(LatencyMatrix({"a", "a"}, {{0, 1}, {1, 0}}), std::invalid_argument);
}

TEST(LatencyMatrix, AccessorsAndBounds) {
  const LatencyMatrix m({"x", "y"}, {{0, 10}, {20, 0}}, 3);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.one_way_us(0, 1), 10);
  EXPECT_EQ(m.one_way_us(1, 0), 20);
  EXPECT_EQ(m.jitter_us(), 3);
  EXPECT_EQ(m.max_one_way_us(), 20);
  EXPECT_EQ(m.region_index("y"), 1);
  EXPECT_EQ(m.region_index("z"), -1);
  EXPECT_THROW(m.one_way_us(0, 2), std::out_of_range);
  EXPECT_THROW(m.one_way_us(-1, 0), std::out_of_range);
}

TEST(LatencyMatrix, NineRegionsMatchesTheSimTable) {
  const LatencyMatrix live = LatencyMatrix::nine_regions();
  const net::WanMatrix sim = net::WanMatrix::nine_regions(2);
  ASSERT_EQ(live.size(), sim.one_way().size());
  for (std::size_t i = 0; i < live.size(); ++i)
    for (std::size_t j = 0; j < live.size(); ++j) {
      if (i == j) {
        // The sim table prices intra-region hops at 1 ms (its tick floor);
        // live loopback is the baseline, so the diagonal is zero.
        EXPECT_EQ(live.one_way_us(static_cast<int>(i), static_cast<int>(j)), 0);
      } else {
        EXPECT_EQ(live.one_way_us(static_cast<int>(i), static_cast<int>(j)),
                  sim.one_way()[i][j] * 1000);
      }
    }
  EXPECT_EQ(live.jitter_us(), sim.jitter() * 1000);
  EXPECT_EQ(live.region_index("us-east"), 0);
  EXPECT_EQ(live.region_index("au-southeast"), 8);
}

TEST(LatencyMatrix, ScaleCompressesEveryCell) {
  const LatencyMatrix full = LatencyMatrix::nine_regions();
  const LatencyMatrix small = LatencyMatrix::nine_regions(0.01);
  for (std::size_t i = 0; i < full.size(); ++i)
    for (std::size_t j = 0; j < full.size(); ++j) {
      const auto fi = static_cast<int>(i), fj = static_cast<int>(j);
      EXPECT_NEAR(static_cast<double>(small.one_way_us(fi, fj)),
                  static_cast<double>(full.one_way_us(fi, fj)) * 0.01, 0.5);
    }
  EXPECT_NEAR(static_cast<double>(small.jitter_us()),
              static_cast<double>(full.jitter_us()) * 0.01, 0.5);
}

TEST(LatencyMatrix, PresetsAreRestrictionsOfNineRegions) {
  const LatencyMatrix nine = LatencyMatrix::nine_regions();
  const LatencyMatrix us_eu = LatencyMatrix::preset("us-eu");
  ASSERT_EQ(us_eu.size(), 4u);
  EXPECT_EQ(us_eu.regions(),
            (std::vector<std::string>{"us-east", "us-west", "eu-west", "eu-central"}));
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      EXPECT_EQ(us_eu.one_way_us(i, j), nine.one_way_us(i, j));

  const LatencyMatrix global = LatencyMatrix::preset("global");
  ASSERT_EQ(global.size(), 5u);
  EXPECT_EQ(global.regions(), (std::vector<std::string>{"us-east", "eu-west", "ap-northeast",
                                                        "sa-east", "au-southeast"}));
  // Spot-check one off-diagonal against the source indices {0,2,4,7,8}.
  EXPECT_EQ(global.one_way_us(0, 2), nine.one_way_us(0, 4));
  EXPECT_EQ(global.one_way_us(3, 4), nine.one_way_us(7, 8));

  EXPECT_TRUE(LatencyMatrix::is_preset("nine-regions"));
  EXPECT_FALSE(LatencyMatrix::is_preset("mars"));
  EXPECT_THROW(LatencyMatrix::preset("mars"), std::invalid_argument);
}

TEST(LatencyMatrix, RestrictValidatesIndices) {
  const LatencyMatrix nine = LatencyMatrix::nine_regions();
  EXPECT_THROW(nine.restrict({0, 9}), std::out_of_range);
  EXPECT_THROW(nine.restrict({}), std::invalid_argument);  // empty restriction: no regions
}

std::string write_temp_matrix(const std::string& name, const std::string& body) {
  const std::string path = testing::TempDir() + name;
  std::ofstream out(path, std::ios::trunc);
  out << body;
  return path;
}

TEST(LatencyMatrix, FromFileParsesTheDocumentedFormat) {
  const std::string path = write_temp_matrix("geo-ok.txt",
                                             "# three sites\n"
                                             "regions us-east eu-west tokyo\n"
                                             "jitter_us 500\n"
                                             "0 38000 75000\n"
                                             "38000 0 105000  # trailing comment\n"
                                             "75000 105000 0\n");
  const LatencyMatrix m = LatencyMatrix::from_file(path);
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m.regions()[2], "tokyo");
  EXPECT_EQ(m.jitter_us(), 500);
  EXPECT_EQ(m.one_way_us(0, 2), 75000);
  EXPECT_EQ(m.one_way_us(2, 1), 105000);

  const LatencyMatrix scaled = LatencyMatrix::from_file(path, 0.5);
  EXPECT_EQ(scaled.one_way_us(0, 1), 19000);
  EXPECT_EQ(scaled.jitter_us(), 250);
}

TEST(LatencyMatrix, FromFileRejectsMalformedInput) {
  EXPECT_THROW(LatencyMatrix::from_file(testing::TempDir() + "geo-no-such-file.txt"),
               std::invalid_argument);
  EXPECT_THROW(
      LatencyMatrix::from_file(write_temp_matrix("geo-short-row.txt",
                                                 "regions a b\n0 1\n1\n")),
      std::invalid_argument);
  EXPECT_THROW(
      LatencyMatrix::from_file(write_temp_matrix("geo-junk-cell.txt",
                                                 "regions a b\n0 x\n1 0\n")),
      std::invalid_argument);
  EXPECT_THROW(
      LatencyMatrix::from_file(write_temp_matrix("geo-missing-rows.txt", "regions a b\n0 1\n")),
      std::invalid_argument);
  EXPECT_THROW(LatencyMatrix::from_file(write_temp_matrix("geo-no-regions.txt", "0 1\n1 0\n")),
               std::invalid_argument);
}

TEST(LatencyMatrix, FromSpecPrefersPresetsThenFiles) {
  EXPECT_EQ(LatencyMatrix::from_spec("us-eu").size(), 4u);
  const std::string path =
      write_temp_matrix("geo-spec.txt", "regions a b\n0 7\n7 0\n");
  EXPECT_EQ(LatencyMatrix::from_spec(path).one_way_us(0, 1), 7);
  EXPECT_THROW(LatencyMatrix::from_spec("definitely-not-a-preset-or-file"),
               std::invalid_argument);
}

TEST(Placement, RoundRobinAndExplicitSpecs) {
  const LatencyMatrix us_eu = LatencyMatrix::preset("us-eu");
  EXPECT_EQ(round_robin_placement(6, us_eu), (std::vector<int>{0, 1, 2, 3, 0, 1}));
  EXPECT_EQ(parse_placement("0,2,2", us_eu), (std::vector<int>{0, 2, 2}));
  EXPECT_EQ(parse_placement("us-east,eu-west,eu-central", us_eu), (std::vector<int>{0, 2, 3}));
  EXPECT_THROW(parse_placement("us-east,mars", us_eu), std::invalid_argument);
  EXPECT_THROW(parse_placement("0,4", us_eu), std::invalid_argument);
  EXPECT_THROW(parse_placement("", us_eu), std::invalid_argument);
}

// --- ChaosInjector integration: the determinism contract ---

transport::ChaosConfig geo_config(std::int64_t jitter_us) {
  transport::ChaosConfig config;
  config.geo = std::make_shared<const LatencyMatrix>(
      LatencyMatrix({"a", "b", "c"}, {{0, 100, 200}, {100, 0, 300}, {200, 300, 0}}, jitter_us));
  config.geo_regions = {0, 1, 2};
  config.seed = 7;
  return config;
}

TEST(ChaosGeo, AddsBaseDelayPerDirectedLink) {
  transport::ChaosInjector inj(geo_config(0), /*self=*/0);
  EXPECT_EQ(inj.geo_base_delay_us(1), 100);
  EXPECT_EQ(inj.geo_base_delay_us(2), 200);
  EXPECT_EQ(inj.geo_base_delay_us(0), 0);  // same region: loopback baseline
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(inj.decide(i, 1).extra_delay, 100);  // no jitter: exact
    EXPECT_EQ(inj.decide(i, 2).extra_delay, 200);
  }
}

TEST(ChaosGeo, JitterIsBoundedAndSeeded) {
  transport::ChaosInjector inj(geo_config(50), /*self=*/1);
  bool varied = false;
  sim::Tick first = -1;
  for (int i = 0; i < 64; ++i) {
    const auto d = inj.decide(i, 0);
    EXPECT_GE(d.extra_delay, 100);
    EXPECT_LE(d.extra_delay, 150);
    if (first < 0) first = d.extra_delay;
    if (d.extra_delay != first) varied = true;
  }
  EXPECT_TRUE(varied);  // 64 draws over a 51-value range: all-equal is a bug
}

TEST(ChaosGeo, DelaySequencePerLinkIsInterleavingIndependent) {
  // Stream A: talk only to peer 1.  Stream B: interleave peers 1 and 2.
  // The per-link sequences must match draw for draw — each directed link
  // owns a jitter stream seeded from (config.seed, self, to) alone.
  transport::ChaosInjector only_one(geo_config(50), /*self=*/0);
  transport::ChaosInjector interleaved(geo_config(50), /*self=*/0);
  std::vector<sim::Tick> a, b;
  for (int i = 0; i < 32; ++i) a.push_back(only_one.decide(i, 1).extra_delay);
  for (int i = 0; i < 32; ++i) {
    b.push_back(interleaved.decide(i, 1).extra_delay);
    (void)interleaved.decide(i, 2);  // traffic on another link must not perturb link 1
  }
  EXPECT_EQ(a, b);
}

TEST(ChaosGeo, DistinctSendersDrawDistinctStreams) {
  transport::ChaosInjector s0(geo_config(50), /*self=*/0);
  transport::ChaosInjector s1(geo_config(50), /*self=*/1);
  std::vector<sim::Tick> a, b;
  for (int i = 0; i < 32; ++i) {
    a.push_back(s0.decide(i, 2).extra_delay - s0.geo_base_delay_us(2));
    b.push_back(s1.decide(i, 2).extra_delay - s1.geo_base_delay_us(2));
  }
  EXPECT_NE(a, b);
}

TEST(ChaosGeo, RejectsUncoveredReplicas) {
  transport::ChaosConfig config = geo_config(0);
  EXPECT_THROW(transport::ChaosInjector(config, /*self=*/3), std::invalid_argument);
  transport::ChaosInjector inj(config, /*self=*/0);
  EXPECT_THROW(inj.geo_base_delay_us(3), std::invalid_argument);
}

TEST(ChaosInjector, RejectsDelayRateWithoutBound) {
  transport::ChaosConfig config;
  config.delay_rate = 0.5;
  config.delay_max_us = 0;  // would silently disable the delay stage
  EXPECT_THROW(transport::ChaosInjector(config, 0), std::invalid_argument);
  config.delay_max_us = 10;
  EXPECT_NO_THROW(transport::ChaosInjector(config, 0));
}

}  // namespace
}  // namespace twostep::geo
