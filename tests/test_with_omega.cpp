// Integration tests for the fully self-contained composition: the paper's
// protocol + heartbeat Ω on one network (no oracle).  This closes the §C.1
// loop: Termination holds under partial synchrony with leader election
// driven purely by messages.
#include <gtest/gtest.h>

#include "consensus/cluster.hpp"
#include "core/with_omega.hpp"
#include "net/latency.hpp"

namespace twostep::core {
namespace {

using consensus::Cluster;
using consensus::ProcessId;
using consensus::SystemConfig;
using consensus::Value;

constexpr sim::Tick kDelta = 100;

std::unique_ptr<Cluster<TwoStepWithOmega>> make_cluster(
    SystemConfig cfg, std::unique_ptr<net::LatencyModel> model, Mode mode,
    std::uint64_t seed = 1) {
  WithOmegaOptions options;
  options.mode = mode;
  options.delta = kDelta;
  return std::make_unique<Cluster<TwoStepWithOmega>>(
      cfg, std::move(model),
      [cfg, options](consensus::Env<OmegaMessage>& env, ProcessId) {
        return std::make_unique<TwoStepWithOmega>(env, cfg, options);
      },
      seed);
}

TEST(WithOmega, FastPathUnaffectedByHeartbeats) {
  const SystemConfig cfg{5, 2, 2};
  auto c = make_cluster(cfg, std::make_unique<net::SynchronousRounds>(kDelta), Mode::kObject);
  c->start_all();
  c->propose(0, Value{42});
  c->run_until(2 * kDelta);
  EXPECT_TRUE(c->monitor().two_step_for(0, kDelta));
  c->run_until(50 * kDelta);
  EXPECT_TRUE(c->monitor().safe());
  EXPECT_TRUE(c->all_correct_decided());
}

TEST(WithOmega, ElectsLowestAliveLeader) {
  const SystemConfig cfg{4, 1, 1};
  auto c = make_cluster(cfg, std::make_unique<net::FixedDelay>(kDelta), Mode::kTask);
  c->start_all();
  c->run_until(10 * kDelta);
  for (ProcessId p = 0; p < cfg.n; ++p) EXPECT_EQ(c->process(p).current_leader(), 0);
}

TEST(WithOmega, LeaderCrashTriggersReelectionAndDecision) {
  // Conflicting proposals kill the fast path; p0 (the initial leader)
  // crashes; the detector elects p1, whose ballot finishes consensus.
  const SystemConfig cfg{5, 2, 2};
  auto c = make_cluster(cfg, std::make_unique<net::FixedDelay>(kDelta), Mode::kObject);
  c->start_all();
  c->propose(1, Value{10});
  c->propose(2, Value{20});
  c->crash_at(50, 0);
  c->crash_at(60, 4);
  const bool done = c->run_until_all_decided(/*deadline=*/400 * kDelta);
  EXPECT_TRUE(done);
  EXPECT_TRUE(c->monitor().safe()) << c->monitor().violations().front();
  for (ProcessId p = 1; p < 4; ++p) EXPECT_EQ(c->process(p).current_leader(), 1) << "p" << p;
}

class WithOmegaPartialSynchrony : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WithOmegaPartialSynchrony, SafeAndLiveWithoutAnyOracle) {
  const SystemConfig cfg{5, 2, 2};
  auto c = make_cluster(cfg,
                        std::make_unique<net::PartialSynchrony>(/*gst=*/1200, kDelta,
                                                                /*chaos=*/900),
                        Mode::kObject, GetParam());
  c->start_all();
  c->propose(0, Value{10});
  c->propose(2, Value{30});
  c->propose(4, Value{50});
  c->crash_at(300, 1);
  const bool done = c->run_until_all_decided(/*deadline=*/3000 * kDelta, 5'000'000);
  EXPECT_TRUE(done);
  EXPECT_TRUE(c->monitor().safe()) << c->monitor().violations().front();
}

INSTANTIATE_TEST_SUITE_P(Seeds, WithOmegaPartialSynchrony,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(WithOmega, DecideCallbackFiresOnce) {
  const SystemConfig cfg{3, 1, 1};
  auto c = make_cluster(cfg, std::make_unique<net::SynchronousRounds>(kDelta), Mode::kTask);
  int fired = 0;
  c->process(0).on_decide = [&](Value) { ++fired; };
  c->start_all();
  c->process(0).propose(Value{5});
  c->process(1).propose(Value{6});
  c->process(2).propose(Value{7});
  c->run_until(50 * kDelta);
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace twostep::core
