// Unit tests for the discrete-event simulator: ordering, FIFO tie-breaking,
// cancellation, bounded runs.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace twostep::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, ExecutesInTimestampOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Simulator, FifoWithinSameTimestamp) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) s.schedule_at(5, [&order, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator s;
  Tick seen = -1;
  s.schedule_at(100, [&] {
    s.schedule_after(5, [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, 105);
}

TEST(Simulator, RejectsPastAndNegative) {
  Simulator s;
  s.schedule_at(10, [] {});
  s.step();
  EXPECT_THROW(s.schedule_at(5, [] {}), std::invalid_argument);
  EXPECT_THROW(s.schedule_after(-1, [] {}), std::invalid_argument);
  EXPECT_THROW(s.schedule_at(20, nullptr), std::invalid_argument);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool fired = false;
  const EventId id = s.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelTwiceFails) {
  Simulator s;
  const EventId id = s.schedule_at(10, [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
}

TEST(Simulator, CancelAfterFiringFails) {
  Simulator s;
  const EventId id = s.schedule_at(10, [] {});
  s.run();
  EXPECT_FALSE(s.cancel(id));
}

TEST(Simulator, CancelUnknownIdFails) {
  Simulator s;
  EXPECT_FALSE(s.cancel(EventId{999}));
  EXPECT_FALSE(s.cancel(EventId{0}));
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.schedule_after(1, recurse);
  };
  s.schedule_at(0, recurse);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), 4);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  std::vector<Tick> fired;
  for (Tick t : {5, 10, 15, 20}) s.schedule_at(t, [&fired, &s] { fired.push_back(s.now()); });
  const std::size_t n = s.run_until(12);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(fired, (std::vector<Tick>{5, 10}));
  EXPECT_EQ(s.now(), 12);  // clock advanced to the deadline
  s.run();
  EXPECT_EQ(fired.back(), 20);
}

TEST(Simulator, RunUntilInclusiveOfDeadline) {
  Simulator s;
  bool fired = false;
  s.schedule_at(10, [&] { fired = true; });
  s.run_until(10);
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunRespectsEventBudget) {
  Simulator s;
  int count = 0;
  std::function<void()> loop = [&] {
    ++count;
    s.schedule_after(1, loop);
  };
  s.schedule_at(0, loop);
  s.run(100);
  EXPECT_EQ(count, 100);
}

TEST(Simulator, RequestStopBreaksRun) {
  Simulator s;
  int count = 0;
  s.schedule_at(1, [&] {
    ++count;
    s.request_stop();
  });
  s.schedule_at(2, [&] { ++count; });
  s.run();
  EXPECT_EQ(count, 1);
  s.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, ExecutedCountsLifetime) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule_at(i, [] {});
  s.run();
  EXPECT_EQ(s.executed(), 7u);
}

TEST(Simulator, PendingExcludesCancelled) {
  Simulator s;
  const EventId a = s.schedule_at(1, [] {});
  s.schedule_at(2, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator s;
  EXPECT_FALSE(s.step());
  s.schedule_at(3, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Simulator, NextEventTime) {
  Simulator s;
  EXPECT_EQ(s.next_event_time(), 0);
  s.schedule_at(42, [] {});
  EXPECT_EQ(s.next_event_time(), 42);
}

TEST(Simulator, NextEventTimeSkipsCancelledTop) {
  // Regression: cancellation is lazy, and next_event_time() used to report
  // the timestamp of a cancelled entry still sitting on the queue top.
  Simulator s;
  const EventId early = s.schedule_at(10, [] {});
  s.schedule_at(25, [] {});
  s.cancel(early);
  EXPECT_EQ(s.next_event_time(), 25);
}

TEST(Simulator, NextEventTimeWithOnlyCancelledEventsIsNow) {
  Simulator s;
  const EventId a = s.schedule_at(10, [] {});
  const EventId b = s.schedule_at(20, [] {});
  s.cancel(a);
  s.cancel(b);
  EXPECT_EQ(s.next_event_time(), s.now());
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, RunUntilIgnoresCancelledEventsPastDeadline) {
  // The deadline peek shares the same drain: a cancelled entry at the top
  // must neither fire nor stop the sweep early.
  Simulator s;
  std::vector<Tick> fired;
  const EventId ghost = s.schedule_at(5, [&fired, &s] { fired.push_back(s.now()); });
  s.schedule_at(8, [&fired, &s] { fired.push_back(s.now()); });
  s.schedule_at(15, [&fired, &s] { fired.push_back(s.now()); });
  s.cancel(ghost);
  const std::size_t n = s.run_until(10);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, (std::vector<Tick>{8}));
  EXPECT_EQ(s.now(), 10);
}

}  // namespace
}  // namespace twostep::sim
