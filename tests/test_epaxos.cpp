// Tests for the EPaxos core: two-delay fast-path commits at the paper's
// operating point (n = 2f+1, e = ceil((f+1)/2)), conflict handling via the
// Accept round, dependency-ordered execution, and explicit recovery.
#include <gtest/gtest.h>

#include <vector>

#include "consensus/cluster.hpp"
#include "epaxos/epaxos.hpp"
#include "net/latency.hpp"

namespace twostep::epaxos {
namespace {

using consensus::Cluster;
using consensus::ProcessId;
using consensus::SystemConfig;

constexpr sim::Tick kDelta = 100;

std::unique_ptr<Cluster<EPaxosReplica>> make_fleet(SystemConfig cfg, sim::Tick delta = kDelta,
                                                   sim::Tick recovery_timeout = 0) {
  Options options;
  options.delta = delta;
  options.recovery_timeout = recovery_timeout;
  return std::make_unique<Cluster<EPaxosReplica>>(
      cfg, std::make_unique<net::SynchronousRounds>(delta),
      [cfg, options](consensus::Env<Message>& env, ProcessId) {
        return std::make_unique<EPaxosReplica>(env, cfg, options);
      });
}

TEST(EPaxos, QuorumArithmetic) {
  auto c5 = make_fleet(SystemConfig{5, 2, 2});
  EXPECT_EQ(c5->process(0).fast_quorum(), 3);  // f + floor((f+1)/2) = 2 + 1
  auto c7 = make_fleet(SystemConfig{7, 3, 2});
  EXPECT_EQ(c7->process(0).fast_quorum(), 5);  // 3 + 2
}

TEST(EPaxos, FastPathCommitsInTwoDelays) {
  const SystemConfig cfg{5, 2, 2};
  auto fleet = make_fleet(cfg);
  sim::Tick committed_at = -1;
  fleet->process(0).on_commit = [&](InstanceId, const Command&) {
    committed_at = fleet->simulator().now();
  };
  const InstanceId id = fleet->process(0).submit(Command{7, 100});
  fleet->run();
  EXPECT_EQ(committed_at, 2 * kDelta);
  EXPECT_TRUE(fleet->process(0).used_fast_path(id));
  // All replicas learn the commit and execute it.
  for (ProcessId p = 0; p < cfg.n; ++p) {
    EXPECT_EQ(fleet->process(p).status(id), Status::kExecuted) << "p" << p;
    EXPECT_EQ(fleet->process(p).committed_command(id), (Command{7, 100}));
  }
}

TEST(EPaxos, FastPathSurvivesEFailures) {
  // The paper's headline operating point: n = 2f+1 commits in two message
  // delays even with e = ceil((f+1)/2) replicas down.
  const int f = 2;
  const int e = (f + 2) / 2;
  const SystemConfig cfg{2 * f + 1, f, e};
  auto fleet = make_fleet(cfg);
  fleet->crash(3);
  fleet->crash(4);  // e = 2 crashes
  sim::Tick committed_at = -1;
  fleet->process(0).on_commit = [&](InstanceId, const Command&) {
    committed_at = fleet->simulator().now();
  };
  const InstanceId id = fleet->process(0).submit(Command{1, 5});
  fleet->run();
  EXPECT_EQ(committed_at, 2 * kDelta);
  EXPECT_TRUE(fleet->process(0).used_fast_path(id));
}

TEST(EPaxos, OneMoreCrashLosesTheFastPathButNotProgress) {
  const SystemConfig cfg{5, 2, 2};
  auto fleet = make_fleet(cfg);
  fleet->crash(2);
  fleet->crash(3);
  fleet->crash(4);  // e+1 = 3 > e crashes: the fast quorum is unreachable
  const InstanceId id = fleet->process(0).submit(Command{1, 5});
  fleet->run();
  EXPECT_EQ(fleet->process(0).status(id), Status::kPreAccepted);
  EXPECT_FALSE(fleet->process(0).used_fast_path(id));
}

TEST(EPaxos, NonInterferingCommandsBothFast) {
  const SystemConfig cfg{5, 2, 2};
  auto fleet = make_fleet(cfg);
  const InstanceId a = fleet->process(0).submit(Command{1, 10});
  const InstanceId b = fleet->process(1).submit(Command{2, 20});  // different key
  fleet->run();
  EXPECT_TRUE(fleet->process(0).used_fast_path(a));
  EXPECT_TRUE(fleet->process(1).used_fast_path(b));
  // No dependency between them anywhere.
  for (ProcessId p = 0; p < cfg.n; ++p) {
    EXPECT_FALSE(fleet->process(p).committed_deps(a).contains(b));
    EXPECT_FALSE(fleet->process(p).committed_deps(b).contains(a));
  }
}

TEST(EPaxos, ConflictingCommandsCommitWithDependencies) {
  const SystemConfig cfg{5, 2, 2};
  auto fleet = make_fleet(cfg);
  const InstanceId a = fleet->process(0).submit(Command{7, 10});
  const InstanceId b = fleet->process(1).submit(Command{7, 20});  // same key
  fleet->run();
  for (ProcessId p = 0; p < cfg.n; ++p) {
    ASSERT_EQ(fleet->process(p).status(a), Status::kExecuted) << "p" << p;
    ASSERT_EQ(fleet->process(p).status(b), Status::kExecuted) << "p" << p;
    const bool a_dep_b = fleet->process(p).committed_deps(a).contains(b);
    const bool b_dep_a = fleet->process(p).committed_deps(b).contains(a);
    EXPECT_TRUE(a_dep_b || b_dep_a);
  }
}

TEST(EPaxos, ExecutionOrderIsIdenticalEverywhere) {
  const SystemConfig cfg{5, 2, 2};
  auto fleet = make_fleet(cfg);
  std::vector<std::vector<std::int64_t>> orders(5);
  for (ProcessId p = 0; p < cfg.n; ++p) {
    fleet->process(p).on_execute = [&orders, p](InstanceId, const Command& c) {
      orders[static_cast<std::size_t>(p)].push_back(c.payload);
    };
  }
  // Three mutually interfering commands from three different leaders.
  fleet->process(0).submit(Command{7, 1});
  fleet->process(1).submit(Command{7, 2});
  fleet->process(2).submit(Command{7, 3});
  fleet->run();
  for (ProcessId p = 0; p < cfg.n; ++p) {
    ASSERT_EQ(orders[static_cast<std::size_t>(p)].size(), 3u) << "p" << p;
    EXPECT_EQ(orders[static_cast<std::size_t>(p)], orders[0]) << "p" << p;
  }
}

TEST(EPaxos, LaterCommandDependsOnEarlierCommitted) {
  const SystemConfig cfg{5, 2, 2};
  auto fleet = make_fleet(cfg);
  const InstanceId a = fleet->process(0).submit(Command{7, 1});
  fleet->run();
  const InstanceId b = fleet->process(1).submit(Command{7, 2});
  fleet->run();
  EXPECT_TRUE(fleet->process(1).committed_deps(b).contains(a));
  EXPECT_TRUE(fleet->process(1).used_fast_path(b));  // deps equal everywhere
}

TEST(EPaxos, RecoveryAdoptsAcceptedCommand) {
  const SystemConfig cfg{5, 2, 2};
  auto fleet = make_fleet(cfg);
  // Two conflicting commands force p0's instance through the Accept round;
  // crash p0 right after it broadcast Accept, then let p1 recover.
  const InstanceId a = fleet->process(0).submit(Command{7, 10});
  fleet->process(1).submit(Command{7, 20});
  // Run until the PreAccept round finished and Accepts are in flight.
  fleet->run_until(3 * kDelta);
  fleet->crash(0);
  fleet->run_until(8 * kDelta);
  fleet->process(1).recover(a);
  fleet->run();
  for (ProcessId p = 1; p < cfg.n; ++p) {
    EXPECT_GE(fleet->process(p).status(a), Status::kCommitted) << "p" << p;
    EXPECT_EQ(fleet->process(p).committed_command(a), (Command{7, 10})) << "p" << p;
  }
}

TEST(EPaxos, RecoveryOfUnseenInstanceCommitsNoOp) {
  const SystemConfig cfg{5, 2, 2};
  auto fleet = make_fleet(cfg);
  // p0 crashes before its PreAccept reaches anyone: with crash-stop
  // semantics the network drops sends from a crashed process, so submitting
  // after the crash models "crashed while sending".
  fleet->crash(0);
  const InstanceId a = fleet->process(0).submit(Command{7, 10});
  fleet->process(1).recover(a);
  fleet->run();
  for (ProcessId p = 1; p < cfg.n; ++p) {
    ASSERT_GE(fleet->process(p).status(a), Status::kCommitted) << "p" << p;
    EXPECT_EQ(fleet->process(p).committed_command(a)->payload, kNoOpPayload);
  }
}

TEST(EPaxos, AutomaticRecoveryViaTimeout) {
  const SystemConfig cfg{5, 2, 2};
  auto fleet = make_fleet(SystemConfig{5, 2, 2}, kDelta, /*recovery_timeout=*/10 * kDelta);
  for (ProcessId p = 0; p < cfg.n; ++p) fleet->process(p).start();
  const InstanceId a = fleet->process(0).submit(Command{7, 10});
  fleet->process(1).submit(Command{7, 20});
  fleet->run_until(3 * kDelta);
  fleet->crash(0);
  // No manual recover(): the timeout-driven scan must finish instance a.
  fleet->run_until(60 * kDelta);
  for (ProcessId p = 1; p < cfg.n; ++p)
    EXPECT_GE(fleet->process(p).status(a), Status::kCommitted) << "p" << p;
}

TEST(EPaxos, MutualInterferenceCycleExecutesConsistently) {
  const SystemConfig cfg{3, 1, 1};
  auto fleet = make_fleet(cfg);
  std::vector<std::vector<std::int64_t>> orders(3);
  for (ProcessId p = 0; p < cfg.n; ++p) {
    fleet->process(p).on_execute = [&orders, p](InstanceId, const Command& c) {
      orders[static_cast<std::size_t>(p)].push_back(c.payload);
    };
  }
  fleet->process(0).submit(Command{7, 1});
  fleet->process(1).submit(Command{7, 2});
  fleet->run();
  for (ProcessId p = 0; p < cfg.n; ++p) {
    ASSERT_EQ(orders[static_cast<std::size_t>(p)].size(), 2u) << "p" << p;
    EXPECT_EQ(orders[static_cast<std::size_t>(p)], orders[0]);
  }
}

}  // namespace
}  // namespace twostep::epaxos
