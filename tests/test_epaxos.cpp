// Tests for the EPaxos core: two-delay fast-path commits at the paper's
// operating point (n = 2f+1, e = ceil((f+1)/2)), conflict handling via the
// Accept round, dependency-ordered execution, and explicit recovery.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "consensus/cluster.hpp"
#include "epaxos/epaxos.hpp"
#include "net/latency.hpp"

namespace twostep::epaxos {
namespace {

using consensus::Cluster;
using consensus::ProcessId;
using consensus::SystemConfig;

constexpr sim::Tick kDelta = 100;

std::unique_ptr<Cluster<EPaxosReplica>> make_fleet(SystemConfig cfg, sim::Tick delta = kDelta,
                                                   sim::Tick recovery_timeout = 0) {
  Options options;
  options.delta = delta;
  options.recovery_timeout = recovery_timeout;
  return std::make_unique<Cluster<EPaxosReplica>>(
      cfg, std::make_unique<net::SynchronousRounds>(delta),
      [cfg, options](consensus::Env<Message>& env, ProcessId) {
        return std::make_unique<EPaxosReplica>(env, cfg, options);
      });
}

TEST(EPaxos, QuorumArithmetic) {
  auto c5 = make_fleet(SystemConfig{5, 2, 2});
  EXPECT_EQ(c5->process(0).fast_quorum(), 3);  // f + floor((f+1)/2) = 2 + 1
  auto c7 = make_fleet(SystemConfig{7, 3, 2});
  EXPECT_EQ(c7->process(0).fast_quorum(), 5);  // 3 + 2
}

TEST(EPaxos, FastPathCommitsInTwoDelays) {
  const SystemConfig cfg{5, 2, 2};
  auto fleet = make_fleet(cfg);
  sim::Tick committed_at = -1;
  fleet->process(0).on_commit = [&](InstanceId, const Command&) {
    committed_at = fleet->simulator().now();
  };
  const InstanceId id = fleet->process(0).submit(Command{7, 100});
  fleet->run();
  EXPECT_EQ(committed_at, 2 * kDelta);
  EXPECT_TRUE(fleet->process(0).used_fast_path(id));
  // All replicas learn the commit and execute it.
  for (ProcessId p = 0; p < cfg.n; ++p) {
    EXPECT_EQ(fleet->process(p).status(id), Status::kExecuted) << "p" << p;
    EXPECT_EQ(fleet->process(p).committed_command(id), (Command{7, 100}));
  }
}

TEST(EPaxos, FastPathSurvivesEFailures) {
  // The paper's headline operating point: n = 2f+1 commits in two message
  // delays even with e = ceil((f+1)/2) replicas down.
  const int f = 2;
  const int e = (f + 2) / 2;
  const SystemConfig cfg{2 * f + 1, f, e};
  auto fleet = make_fleet(cfg);
  fleet->crash(3);
  fleet->crash(4);  // e = 2 crashes
  sim::Tick committed_at = -1;
  fleet->process(0).on_commit = [&](InstanceId, const Command&) {
    committed_at = fleet->simulator().now();
  };
  const InstanceId id = fleet->process(0).submit(Command{1, 5});
  fleet->run();
  EXPECT_EQ(committed_at, 2 * kDelta);
  EXPECT_TRUE(fleet->process(0).used_fast_path(id));
}

TEST(EPaxos, OneMoreCrashLosesTheFastPathButNotProgress) {
  const SystemConfig cfg{5, 2, 2};
  auto fleet = make_fleet(cfg);
  fleet->crash(2);
  fleet->crash(3);
  fleet->crash(4);  // e+1 = 3 > e crashes: the fast quorum is unreachable
  const InstanceId id = fleet->process(0).submit(Command{1, 5});
  fleet->run();
  EXPECT_EQ(fleet->process(0).status(id), Status::kPreAccepted);
  EXPECT_FALSE(fleet->process(0).used_fast_path(id));
}

TEST(EPaxos, NonInterferingCommandsBothFast) {
  const SystemConfig cfg{5, 2, 2};
  auto fleet = make_fleet(cfg);
  const InstanceId a = fleet->process(0).submit(Command{1, 10});
  const InstanceId b = fleet->process(1).submit(Command{2, 20});  // different key
  fleet->run();
  EXPECT_TRUE(fleet->process(0).used_fast_path(a));
  EXPECT_TRUE(fleet->process(1).used_fast_path(b));
  // No dependency between them anywhere.
  for (ProcessId p = 0; p < cfg.n; ++p) {
    EXPECT_FALSE(fleet->process(p).committed_deps(a).contains(b));
    EXPECT_FALSE(fleet->process(p).committed_deps(b).contains(a));
  }
}

TEST(EPaxos, ConflictingCommandsCommitWithDependencies) {
  const SystemConfig cfg{5, 2, 2};
  auto fleet = make_fleet(cfg);
  const InstanceId a = fleet->process(0).submit(Command{7, 10});
  const InstanceId b = fleet->process(1).submit(Command{7, 20});  // same key
  fleet->run();
  for (ProcessId p = 0; p < cfg.n; ++p) {
    ASSERT_EQ(fleet->process(p).status(a), Status::kExecuted) << "p" << p;
    ASSERT_EQ(fleet->process(p).status(b), Status::kExecuted) << "p" << p;
    const bool a_dep_b = fleet->process(p).committed_deps(a).contains(b);
    const bool b_dep_a = fleet->process(p).committed_deps(b).contains(a);
    EXPECT_TRUE(a_dep_b || b_dep_a);
  }
}

TEST(EPaxos, ExecutionOrderIsIdenticalEverywhere) {
  const SystemConfig cfg{5, 2, 2};
  auto fleet = make_fleet(cfg);
  std::vector<std::vector<std::int64_t>> orders(5);
  for (ProcessId p = 0; p < cfg.n; ++p) {
    fleet->process(p).on_execute = [&orders, p](InstanceId, const Command& c) {
      orders[static_cast<std::size_t>(p)].push_back(c.payload);
    };
  }
  // Three mutually interfering commands from three different leaders.
  fleet->process(0).submit(Command{7, 1});
  fleet->process(1).submit(Command{7, 2});
  fleet->process(2).submit(Command{7, 3});
  fleet->run();
  for (ProcessId p = 0; p < cfg.n; ++p) {
    ASSERT_EQ(orders[static_cast<std::size_t>(p)].size(), 3u) << "p" << p;
    EXPECT_EQ(orders[static_cast<std::size_t>(p)], orders[0]) << "p" << p;
  }
}

TEST(EPaxos, LaterCommandDependsOnEarlierCommitted) {
  const SystemConfig cfg{5, 2, 2};
  auto fleet = make_fleet(cfg);
  const InstanceId a = fleet->process(0).submit(Command{7, 1});
  fleet->run();
  const InstanceId b = fleet->process(1).submit(Command{7, 2});
  fleet->run();
  EXPECT_TRUE(fleet->process(1).committed_deps(b).contains(a));
  EXPECT_TRUE(fleet->process(1).used_fast_path(b));  // deps equal everywhere
}

TEST(EPaxos, RecoveryAdoptsAcceptedCommand) {
  const SystemConfig cfg{5, 2, 2};
  auto fleet = make_fleet(cfg);
  // Two conflicting commands force p0's instance through the Accept round;
  // crash p0 right after it broadcast Accept, then let p1 recover.
  const InstanceId a = fleet->process(0).submit(Command{7, 10});
  fleet->process(1).submit(Command{7, 20});
  // Run until the PreAccept round finished and Accepts are in flight.
  fleet->run_until(3 * kDelta);
  fleet->crash(0);
  fleet->run_until(8 * kDelta);
  fleet->process(1).recover(a);
  fleet->run();
  for (ProcessId p = 1; p < cfg.n; ++p) {
    EXPECT_GE(fleet->process(p).status(a), Status::kCommitted) << "p" << p;
    EXPECT_EQ(fleet->process(p).committed_command(a), (Command{7, 10})) << "p" << p;
  }
}

TEST(EPaxos, RecoveryOfUnseenInstanceCommitsNoOp) {
  const SystemConfig cfg{5, 2, 2};
  auto fleet = make_fleet(cfg);
  // p0 crashes before its PreAccept reaches anyone: with crash-stop
  // semantics the network drops sends from a crashed process, so submitting
  // after the crash models "crashed while sending".
  fleet->crash(0);
  const InstanceId a = fleet->process(0).submit(Command{7, 10});
  fleet->process(1).recover(a);
  fleet->run();
  for (ProcessId p = 1; p < cfg.n; ++p) {
    ASSERT_GE(fleet->process(p).status(a), Status::kCommitted) << "p" << p;
    EXPECT_EQ(fleet->process(p).committed_command(a)->payload, kNoOpPayload);
  }
}

TEST(EPaxos, RecoveryPrefersPossiblyFastCommittedAttributes) {
  // n=3: the fast quorum is the leader plus one acceptor, so a crashed
  // leader may have fast-committed its *original* attributes on the
  // strength of one unchanged reply.  Recovery that sees that unchanged
  // reply (deps/seq <= every other reply) must re-commit exactly those
  // attributes — unioning in another acceptor's extra dep would commit
  // attributes the leader never saw, and execution orders would diverge.
  const SystemConfig cfg{3, 1, 1};
  auto fleet = make_fleet(cfg);
  const InstanceId a{0, 0};
  const InstanceId extra{1, 77};
  fleet->crash(0);
  fleet->process(1).restore_instance(
      a, {Command{7, 10}, /*deps=*/{}, /*seq=*/1, Status::kPreAccepted, /*ballot=*/0});
  fleet->process(2).restore_instance(
      a, {Command{7, 10}, /*deps=*/{extra}, /*seq=*/2, Status::kPreAccepted, /*ballot=*/0});
  fleet->process(1).recover(a);
  fleet->run();
  for (ProcessId p = 1; p < cfg.n; ++p) {
    ASSERT_GE(fleet->process(p).status(a), Status::kCommitted) << "p" << p;
    EXPECT_EQ(fleet->process(p).committed_command(a), (Command{7, 10})) << "p" << p;
    EXPECT_TRUE(fleet->process(p).committed_deps(a).empty()) << "p" << p;
  }
}

TEST(EPaxos, RecoveryUnionsIncomparablePreAccepts) {
  // Incomparable pre-accept replies mean no single original could have
  // produced both, so no fast commit was possible — recovery is free to
  // choose and takes the conservative union, which sequences everything.
  const SystemConfig cfg{3, 1, 1};
  auto fleet = make_fleet(cfg);
  const InstanceId a{0, 0};
  const InstanceId x{1, 77};
  const InstanceId y{2, 88};
  fleet->crash(0);
  fleet->process(1).restore_instance(
      a, {Command{7, 10}, /*deps=*/{x}, /*seq=*/1, Status::kPreAccepted, /*ballot=*/0});
  fleet->process(2).restore_instance(
      a, {Command{7, 10}, /*deps=*/{y}, /*seq=*/1, Status::kPreAccepted, /*ballot=*/0});
  fleet->process(1).recover(a);
  fleet->run();
  for (ProcessId p = 1; p < cfg.n; ++p) {
    ASSERT_GE(fleet->process(p).status(a), Status::kCommitted) << "p" << p;
    EXPECT_EQ(fleet->process(p).committed_deps(a), (DepSet{x, y})) << "p" << p;
  }
}

TEST(EPaxos, OwnerRecoveryReassignsAttributesAtALiveQuorum) {
  // A restarted owner recovering its own pre-accepted instance proves no
  // fast commit ever happened (a commit would have been restored as
  // committed — state is durable before any frame leaves the node), so
  // recovery re-runs Phase 1: the live quorum folds in instances committed
  // while the owner was down.  Re-committing the owner's stale original
  // attributes instead would leave two interfering committed instances
  // with no dependency edge either way, and replicas would be free to
  // execute them in different orders.
  const SystemConfig cfg{3, 1, 1};
  auto fleet = make_fleet(cfg);
  const InstanceId gamma{2, 0};
  const InstanceId own{1, 5};
  // (2,0) committed at the two live replicas while replica 1 was down; its
  // deps do not mention (1,5).
  fleet->process(0).restore_instance(
      gamma, {Command{7, 9}, /*deps=*/{}, /*seq=*/3, Status::kCommitted, /*ballot=*/0});
  fleet->process(2).restore_instance(
      gamma, {Command{7, 9}, /*deps=*/{}, /*seq=*/3, Status::kCommitted, /*ballot=*/0});
  // Replica 1 restarts with only its own stale pre-accept; nobody else
  // ever saw its PreAccept round.
  fleet->process(1).restore_instance(
      own, {Command{7, 42}, /*deps=*/{}, /*seq=*/1, Status::kPreAccepted, /*ballot=*/0});
  fleet->process(1).recover(own);
  fleet->run();
  for (ProcessId p = 0; p < cfg.n; ++p) {
    ASSERT_GE(fleet->process(p).status(own), Status::kCommitted) << "p" << p;
    EXPECT_EQ(fleet->process(p).committed_command(own), (Command{7, 42})) << "p" << p;
    EXPECT_TRUE(fleet->process(p).committed_deps(own).contains(gamma)) << "p" << p;
  }
}

TEST(EPaxos, AutomaticRecoveryViaTimeout) {
  const SystemConfig cfg{5, 2, 2};
  auto fleet = make_fleet(SystemConfig{5, 2, 2}, kDelta, /*recovery_timeout=*/10 * kDelta);
  for (ProcessId p = 0; p < cfg.n; ++p) fleet->process(p).start();
  const InstanceId a = fleet->process(0).submit(Command{7, 10});
  fleet->process(1).submit(Command{7, 20});
  fleet->run_until(3 * kDelta);
  fleet->crash(0);
  // No manual recover(): the timeout-driven scan must finish instance a.
  fleet->run_until(60 * kDelta);
  for (ProcessId p = 1; p < cfg.n; ++p)
    EXPECT_GE(fleet->process(p).status(a), Status::kCommitted) << "p" << p;
}

TEST(EPaxos, TimerRecoversUnseenDependencyOfCommittedInstance) {
  const SystemConfig cfg{3, 1, 1};
  auto fleet = make_fleet(cfg, kDelta, /*recovery_timeout=*/10 * kDelta);
  for (ProcessId p = 0; p < cfg.n; ++p) fleet->process(p).start();
  const InstanceId dep{0, 7};
  const InstanceId own{2, 3};
  // Replica 2 restored a committed instance whose dependency's Commit frame
  // it never received, and no replica has any record of the dependency (so
  // nobody else will ever recover it).  The timer scan must drive the
  // unseen dependency to a commit so execution can pass it.
  fleet->process(2).restore_instance(own, {Command{7, 55}, {dep}, 9, Status::kCommitted, 0});
  fleet->run_until(60 * kDelta);
  EXPECT_EQ(fleet->process(2).status(own), Status::kExecuted);
  EXPECT_GE(fleet->process(2).status(dep), Status::kCommitted);
}

TEST(EPaxos, MutualInterferenceCycleExecutesConsistently) {
  const SystemConfig cfg{3, 1, 1};
  auto fleet = make_fleet(cfg);
  std::vector<std::vector<std::int64_t>> orders(3);
  for (ProcessId p = 0; p < cfg.n; ++p) {
    fleet->process(p).on_execute = [&orders, p](InstanceId, const Command& c) {
      orders[static_cast<std::size_t>(p)].push_back(c.payload);
    };
  }
  fleet->process(0).submit(Command{7, 1});
  fleet->process(1).submit(Command{7, 2});
  fleet->run();
  for (ProcessId p = 0; p < cfg.n; ++p) {
    ASSERT_EQ(orders[static_cast<std::size_t>(p)].size(), 2u) << "p" << p;
    EXPECT_EQ(orders[static_cast<std::size_t>(p)], orders[0]);
  }
}

// ---- durability surface (what storage::Durable captures and replays) ----

TEST(EPaxos, InstanceStateClampsExecutedToCommitted) {
  const SystemConfig cfg{5, 2, 2};
  auto fleet = make_fleet(cfg);
  const InstanceId id = fleet->process(0).submit(Command{7, 100});
  fleet->run();
  ASSERT_EQ(fleet->process(0).status(id), Status::kExecuted);
  const auto state = fleet->process(0).instance_state(id);
  ASSERT_TRUE(state.has_value());
  // Execution is a pure function of the committed graph, so the durable
  // record never claims more than kCommitted.
  EXPECT_EQ(state->status, Status::kCommitted);
  EXPECT_EQ(state->cmd, (Command{7, 100}));
  EXPECT_EQ(state->deps, fleet->process(0).committed_deps(id));
  EXPECT_FALSE(fleet->process(0).instance_state(InstanceId{3, 99}).has_value());
}

TEST(EPaxos, DrainDirtyInstancesTracksMutationsAndClears) {
  const SystemConfig cfg{5, 2, 2};
  auto fleet = make_fleet(cfg);
  auto& p0 = fleet->process(0);
  const InstanceId id = p0.submit(Command{1, 1});
  auto dirty = p0.drain_dirty_instances();
  EXPECT_NE(std::find(dirty.begin(), dirty.end(), id), dirty.end());
  EXPECT_TRUE(p0.drain_dirty_instances().empty());
  // Running the protocol (replies, commit, execution) dirties it again.
  fleet->run();
  dirty = p0.drain_dirty_instances();
  EXPECT_NE(std::find(dirty.begin(), dirty.end(), id), dirty.end());
  EXPECT_TRUE(p0.drain_dirty_instances().empty());
}

TEST(EPaxos, RestoreInstanceRebuildsCommitAndExecution) {
  const SystemConfig cfg{5, 2, 2};
  auto fleet = make_fleet(cfg);
  const InstanceId a = fleet->process(0).submit(Command{7, 1});
  const InstanceId b = fleet->process(1).submit(Command{7, 2});
  fleet->run();
  auto& src = fleet->process(2);
  const auto sa = src.instance_state(a);
  const auto sb = src.instance_state(b);
  ASSERT_TRUE(sa.has_value());
  ASSERT_TRUE(sb.has_value());

  // Restore into a replica that has seen nothing; both restore orders must
  // yield the same execution sequence a live replica derived.
  std::vector<std::vector<InstanceId>> executed(2);
  for (int order = 0; order < 2; ++order) {
    auto fresh = make_fleet(cfg);
    auto& dst = fresh->process(2);
    std::vector<InstanceId> committed;
    dst.on_commit = [&](InstanceId id, const Command&) { committed.push_back(id); };
    dst.on_execute = [&executed, order](InstanceId id, const Command&) {
      executed[static_cast<std::size_t>(order)].push_back(id);
    };
    if (order == 0) {
      dst.restore_instance(a, *sa);
      dst.restore_instance(b, *sb);
    } else {
      dst.restore_instance(b, *sb);
      dst.restore_instance(a, *sa);
    }
    EXPECT_EQ(committed.size(), 2u);
    EXPECT_EQ(dst.status(a), Status::kExecuted);
    EXPECT_EQ(dst.status(b), Status::kExecuted);
    EXPECT_EQ(dst.committed_command(a), (Command{7, 1}));
    EXPECT_EQ(dst.committed_deps(b), src.committed_deps(b));
  }
  ASSERT_EQ(executed[0].size(), 2u);
  EXPECT_EQ(executed[0], executed[1]);
}

TEST(EPaxos, RestoreNeverDowngradesAnExecutedInstance) {
  const SystemConfig cfg{5, 2, 2};
  auto fleet = make_fleet(cfg);
  const InstanceId a = fleet->process(0).submit(Command{7, 1});
  fleet->run();  // a commits with no deps before b enters
  const InstanceId b = fleet->process(1).submit(Command{7, 2});
  fleet->run();
  auto& src = fleet->process(2);
  const auto sa = src.instance_state(a);
  const auto sb = src.instance_state(b);
  ASSERT_TRUE(sa.has_value());
  ASSERT_TRUE(sb.has_value());
  ASSERT_TRUE(src.committed_deps(b).contains(a));

  // A WAL can hold several records for one instance: a commit, then e.g. a
  // ballot bump from a recovery Prepare, re-captured as kCommitted.  Once
  // replaying the first record has executed the instance, replaying the
  // later record must not move it back to kCommitted — a following
  // try_execute sweep would apply the command a second time.
  auto fresh = make_fleet(cfg);
  auto& dst = fresh->process(2);
  std::vector<InstanceId> executed;
  dst.on_execute = [&executed](InstanceId id, const Command&) { executed.push_back(id); };
  dst.restore_instance(a, *sa);
  ASSERT_EQ(dst.status(a), Status::kExecuted);
  auto bumped = *sa;
  bumped.ballot = sa->ballot + 2;
  dst.restore_instance(a, bumped);
  EXPECT_EQ(dst.status(a), Status::kExecuted);
  // The next record commits b (deps include a) and sweeps try_execute; a
  // must not run again.
  dst.restore_instance(b, *sb);
  const auto count_a = std::count(executed.begin(), executed.end(), a);
  EXPECT_EQ(count_a, 1);
  EXPECT_EQ(executed.size(), 2u);
}

TEST(EPaxos, RestoreAdvancesOwnNextIndex) {
  const SystemConfig cfg{5, 2, 2};
  auto fleet = make_fleet(cfg);
  const InstanceId b = fleet->process(1).submit(Command{3, 4});
  fleet->run();
  const auto state = fleet->process(1).instance_state(b);
  ASSERT_TRUE(state.has_value());

  // A restarted replica must not reuse an instance index it already owns.
  auto fresh = make_fleet(cfg);
  auto& dst = fresh->process(1);
  dst.restore_instance(b, *state);
  const InstanceId next = dst.submit(Command{9, 9});
  EXPECT_EQ(next.replica, 1);
  EXPECT_EQ(next.index, b.index + 1);
}

}  // namespace
}  // namespace twostep::epaxos
