// Tests for the run harnesses themselves: Cluster timer/crash semantics,
// scheduled proposals, the ScenarioRunner's Ω oracle, and priority_order.
#include <gtest/gtest.h>

#include "support.hpp"

namespace twostep::consensus {
namespace {

using core::Mode;
using core::TwoStepProcess;
using testing::RunSpec;

constexpr sim::Tick kDelta = 100;

TEST(Cluster, TimersDoNotFireForCrashedProcesses) {
  // A crashed process's armed ballot timer must not start ballots: after a
  // crash at time 0, the network shows zero messages from it.
  const SystemConfig cfg{3, 1, 1};
  auto r = RunSpec(cfg).delta(kDelta).trace().core(Mode::kTask);
  r->cluster().start_all();  // everyone arms the 2Δ timer
  r->cluster().crash(0);     // p0 would be the Ω leader
  r->cluster().propose(1, Value{1});
  r->cluster().propose(2, Value{2});
  r->cluster().run();
  // p0 sent nothing; consensus still terminates via p1's ballots.
  EXPECT_TRUE(r->monitor().safe());
  EXPECT_TRUE(r->cluster().all_correct_decided());
  for (const auto& entry : r->cluster().network().trace()) EXPECT_NE(entry.from, 0);
}

TEST(Cluster, ProposeAtSchedulesInVirtualTime) {
  const SystemConfig cfg{3, 1, 1};
  auto r = RunSpec(cfg).delta(kDelta).core(Mode::kObject);
  r->cluster().start_all();
  // Mid-round proposal, still before the 2Δ new-ballot timer: the Propose
  // lands at the next round boundary and the fast path completes at 2Δ.
  r->cluster().propose_at(kDelta / 2, 1, Value{9});
  r->cluster().run();
  const auto t = r->monitor().decision_time(1);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 2 * kDelta);
}

TEST(Cluster, RunUntilAllDecidedStopsEarly) {
  const SystemConfig cfg{5, 2, 1};
  auto r = RunSpec(cfg).delta(kDelta).core(Mode::kTask);
  r->cluster().start_all();
  for (ProcessId p = 0; p < cfg.n; ++p) r->cluster().propose(p, Value{p + 1});
  EXPECT_TRUE(r->cluster().run_until_all_decided(100 * kDelta));
  EXPECT_LE(r->cluster().now(), 10 * kDelta);
}

TEST(Cluster, CrashIsVisibleToOmegaOracle) {
  // After p0 crashes, the ScenarioRunner's oracle elects p1, and p1's
  // ballot appears in the trace (1A messages from p1).
  const SystemConfig cfg{3, 1, 1};
  auto r = RunSpec(cfg).delta(kDelta).trace().core(Mode::kObject);
  r->cluster().crash(0);
  r->cluster().start_all();
  r->cluster().propose(1, Value{5});
  r->cluster().propose(2, Value{6});  // conflicting: needs the slow path
  r->cluster().run();
  EXPECT_TRUE(r->cluster().all_correct_decided());
  bool p1_led = false;
  for (const auto& entry : r->cluster().network().trace())
    if (entry.from == 1 && std::holds_alternative<core::OneAMsg>(entry.payload)) p1_led = true;
  EXPECT_TRUE(p1_led);
}

TEST(Cluster, MonitorRecordsProposalsOfCrashedProcesses) {
  // Crashed processes' inputs belong to the initial configuration even
  // though they take no step (Definition 2).
  const SystemConfig cfg{3, 1, 1};
  auto r = RunSpec(cfg).delta(kDelta).trace().core(Mode::kTask);
  r->cluster().crash(2);
  r->cluster().propose(2, Value{9});
  EXPECT_EQ(r->monitor().proposals().at(2), Value{9});
  EXPECT_TRUE(r->cluster().network().trace().empty());
}

TEST(PriorityOrder, PutsWitnessFirstKeepsOthersInIdOrder) {
  std::map<ProcessId, Value> initial{{0, Value{1}}, {1, Value{2}}, {2, Value{3}}};
  const auto order = priority_order(initial, 1);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0].p, 1);
  EXPECT_EQ(order[1].p, 0);
  EXPECT_EQ(order[2].p, 2);
}

TEST(PriorityOrder, WitnessWithoutProposalIsSkipped) {
  std::map<ProcessId, Value> initial{{0, Value{1}}};
  const auto order = priority_order(initial, 5);
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0].p, 0);
}

TEST(ScenarioRunner, HorizonLimitsTheRun) {
  const SystemConfig cfg{3, 1, 1};
  auto r = RunSpec(cfg).delta(kDelta).core(Mode::kTask);
  SyncScenario s;
  s.proposals = {{2, Value{9}}, {0, Value{1}}, {1, Value{2}}};
  s.horizon = 2 * kDelta;
  r->run(s);
  EXPECT_EQ(r->cluster().now(), 2 * kDelta);
  // The witness decided exactly at the horizon; stragglers have not.
  EXPECT_TRUE(r->monitor().has_decided(2));
  EXPECT_FALSE(r->monitor().has_decided(0));
}

TEST(ScenarioRunner, SeedChangesNothingUnderSynchronousRounds) {
  // Definition-2 runs are fully deterministic: the latency model ignores
  // the RNG, so two different seeds give identical decision times.
  for (const std::uint64_t seed : {1ull, 999ull}) {
    const SystemConfig cfg{5, 2, 1};
    auto r = std::make_unique<testing::CoreRunner>(
        cfg, std::make_unique<net::SynchronousRounds>(kDelta),
        [] {
          core::Options o;
          o.mode = Mode::kTask;
          o.delta = kDelta;
          return o;
        }(),
        seed);
    SyncScenario s;
    s.proposals = {{4, Value{50}}, {0, Value{10}}, {1, Value{20}}, {2, Value{30}},
                   {3, Value{40}}};
    r->run(s);
    EXPECT_EQ(r->monitor().decision_time(4), 2 * kDelta) << "seed " << seed;
  }
}

TEST(Cluster, RejectsNullFactory) {
  const SystemConfig cfg{3, 1, 1};
  using C = Cluster<TwoStepProcess>;
  EXPECT_THROW(C(cfg, std::make_unique<net::SynchronousRounds>(kDelta), nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace twostep::consensus
