// Tests for the executable Appendix B constructions: below each bound the
// splicing attack produces a real Agreement violation; at the bound the very
// same attack is defeated.
#include <gtest/gtest.h>

#include "consensus/types.hpp"
#include "lowerbound/scenarios.hpp"
#include "obs/metrics.hpp"

namespace twostep::lowerbound {
namespace {

using consensus::SystemConfig;
using consensus::Value;

struct Params {
  int e;
  int f;
};

class TaskBound : public ::testing::TestWithParam<Params> {};

TEST_P(TaskBound, ViolationBelowTheorem5Bound) {
  const auto [e, f] = GetParam();
  const AttackOutcome out = task_below_bound_violation(e, f);
  EXPECT_EQ(out.n, SystemConfig::min_processes_task(e, f) - 1);
  EXPECT_TRUE(out.agreement_violated) << out.narrative.back();
  EXPECT_EQ(out.fast_decision, Value{20});
  EXPECT_EQ(out.late_decision, Value{10});
  EXPECT_LE(out.crashes_used, f);
}

TEST_P(TaskBound, DefendedAtTheorem5Bound) {
  const auto [e, f] = GetParam();
  const AttackOutcome out = task_at_bound_defense(e, f);
  EXPECT_EQ(out.n, SystemConfig::min_processes_task(e, f));
  EXPECT_FALSE(out.agreement_violated) << out.narrative.back();
  EXPECT_EQ(out.fast_decision, Value{20});
  EXPECT_EQ(out.late_decision, Value{20});  // recovery re-proposes the decided value
  EXPECT_LE(out.crashes_used, f);
}

INSTANTIATE_TEST_SUITE_P(Configs, TaskBound,
                         ::testing::Values(Params{2, 2}, Params{3, 3}, Params{3, 4},
                                           Params{4, 4}),
                         [](const ::testing::TestParamInfo<Params>& info) {
                           return "e" + std::to_string(info.param.e) + "f" +
                                  std::to_string(info.param.f);
                         });

class ObjectBound : public ::testing::TestWithParam<Params> {};

TEST_P(ObjectBound, ViolationBelowTheorem6Bound) {
  const auto [e, f] = GetParam();
  const AttackOutcome out = object_below_bound_violation(e, f);
  EXPECT_EQ(out.n, SystemConfig::min_processes_object(e, f) - 1);
  EXPECT_TRUE(out.agreement_violated) << out.narrative.back();
  EXPECT_EQ(out.fast_decision, Value{20});
  EXPECT_EQ(out.late_decision, Value{10});
  EXPECT_LE(out.crashes_used, f);
}

TEST_P(ObjectBound, DefendedAtTheorem6Bound) {
  const auto [e, f] = GetParam();
  const AttackOutcome out = object_at_bound_defense(e, f);
  EXPECT_EQ(out.n, SystemConfig::min_processes_object(e, f));
  EXPECT_FALSE(out.agreement_violated) << out.narrative.back();
  EXPECT_EQ(out.late_decision, Value{20});
  EXPECT_LE(out.crashes_used, f);
}

INSTANTIATE_TEST_SUITE_P(Configs, ObjectBound,
                         ::testing::Values(Params{3, 3}, Params{4, 4}, Params{4, 5}),
                         [](const ::testing::TestParamInfo<Params>& info) {
                           return "e" + std::to_string(info.param.e) + "f" +
                                  std::to_string(info.param.f);
                         });

class FastPaxosBound : public ::testing::TestWithParam<Params> {};

TEST_P(FastPaxosBound, ViolationBelowLamportBound) {
  const auto [e, f] = GetParam();
  const AttackOutcome out = fastpaxos_below_bound_violation(e, f);
  EXPECT_EQ(out.n, 2 * e + f);
  EXPECT_TRUE(out.agreement_violated) << out.narrative.back();
  EXPECT_EQ(out.fast_decision, Value{20});
  EXPECT_LE(out.crashes_used, f);
}

TEST_P(FastPaxosBound, DefendedAtLamportBound) {
  const auto [e, f] = GetParam();
  const AttackOutcome out = fastpaxos_at_bound_defense(e, f);
  EXPECT_EQ(out.n, 2 * e + f + 1);
  EXPECT_FALSE(out.agreement_violated) << out.narrative.back();
  EXPECT_EQ(out.late_decision, Value{20});
  EXPECT_LE(out.crashes_used, f);
}

INSTANTIATE_TEST_SUITE_P(Configs, FastPaxosBound,
                         ::testing::Values(Params{1, 1}, Params{1, 2}, Params{2, 2},
                                           Params{2, 3}),
                         [](const ::testing::TestParamInfo<Params>& info) {
                           return "e" + std::to_string(info.param.e) + "f" +
                                  std::to_string(info.param.f);
                         });

TEST(LowerBoundSeparation, PaperProtocolSurvivesWhereFastPaxosBreaks) {
  // The paper's headline: at the same (e, f) and n = 2e+f, Fast Paxos loses
  // a fast decision under the splicing attack while the task protocol at
  // that n (its tight bound) defends.
  const int e = 2;
  const int f = 2;
  const AttackOutcome fp = fastpaxos_below_bound_violation(e, f);
  const AttackOutcome task = task_at_bound_defense(e, f);
  ASSERT_EQ(fp.n, task.n);  // same cluster size: 2e+f = 6
  EXPECT_TRUE(fp.agreement_violated);
  EXPECT_FALSE(task.agreement_violated);
}

TEST(LowerBoundArguments, RejectInvalidParameters) {
  EXPECT_THROW(task_below_bound_violation(1, 1), std::invalid_argument);   // 2e < f+2
  EXPECT_THROW(object_below_bound_violation(2, 2), std::invalid_argument); // 2e < f+3
  EXPECT_THROW(fastpaxos_below_bound_violation(0, 1), std::invalid_argument);
}

TEST(Ablation, MaxTieBreakIsLoadBearing) {
  // The same at-bound tie scenario: the paper rule recovers the fast
  // decision; picking the minimum candidate instead violates Agreement.
  const AttackOutcome paper =
      task_at_bound_with_policy(2, 2, core::SelectionPolicy::kPaper);
  EXPECT_FALSE(paper.agreement_violated);
  EXPECT_EQ(paper.late_decision, Value{20});

  const AttackOutcome mutant =
      task_at_bound_with_policy(2, 2, core::SelectionPolicy::kNoMaxTieBreak);
  EXPECT_TRUE(mutant.agreement_violated) << mutant.narrative.back();
  EXPECT_EQ(mutant.late_decision, Value{10});
}

TEST(Ablation, ThresholdBranchIsLoadBearing) {
  // Dropping the "= n-f-e votes" branch loses the decided value entirely:
  // the leader proposes its own value instead.
  const AttackOutcome mutant =
      task_at_bound_with_policy(2, 2, core::SelectionPolicy::kNoThresholdBranch);
  EXPECT_TRUE(mutant.agreement_violated) << mutant.narrative.back();
}

TEST(Ablation, ProposerExclusionIsLoadBearing) {
  const AttackOutcome paper =
      object_exclusion_ablation(core::SelectionPolicy::kPaper);
  EXPECT_FALSE(paper.agreement_violated) << paper.narrative.back();
  EXPECT_EQ(paper.late_decision, Value{10});

  const AttackOutcome mutant =
      object_exclusion_ablation(core::SelectionPolicy::kNoProposerExclusion);
  EXPECT_TRUE(mutant.agreement_violated) << mutant.narrative.back();
  EXPECT_EQ(mutant.late_decision, Value{20});
}

TEST(LowerBoundNarrative, ExplainsTheRun) {
  const AttackOutcome out = task_below_bound_violation(2, 2);
  ASSERT_GE(out.narrative.size(), 5u);
  EXPECT_NE(out.narrative.back().find("AGREEMENT VIOLATED"), std::string::npos);
}

TEST(BoundSweep, EveryGridPointBehavesAsPredicted) {
  const auto rows = sweep_bounds(3, 4);
  EXPECT_FALSE(rows.empty());
  for (const auto& row : rows)
    EXPECT_TRUE(row.as_predicted())
        << row.construction << " e=" << row.e << " f=" << row.f;
}

TEST(BoundSweep, ParallelSweepMatchesSequential) {
  obs::MetricsRegistry seq_metrics, par_metrics;
  const auto seq = sweep_bounds(3, 4, 1, &seq_metrics);
  const auto par = sweep_bounds(3, 4, 8, &par_metrics);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].construction, par[i].construction);
    EXPECT_EQ(seq[i].e, par[i].e);
    EXPECT_EQ(seq[i].f, par[i].f);
    EXPECT_EQ(seq[i].below.n, par[i].below.n);
    EXPECT_EQ(seq[i].below.agreement_violated, par[i].below.agreement_violated);
    EXPECT_EQ(seq[i].below.narrative, par[i].below.narrative);
    EXPECT_EQ(seq[i].at.agreement_violated, par[i].at.agreement_violated);
  }
  // Merged metrics must be order-blind: the two registries render the same.
  EXPECT_EQ(seq_metrics.to_json(), par_metrics.to_json());
  EXPECT_EQ(seq_metrics.counter_value("lowerbound.attacks"), seq.size());
}

}  // namespace
}  // namespace twostep::lowerbound
