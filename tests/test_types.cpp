// Unit tests for the consensus vocabulary: Value ordering with bottom,
// SystemConfig validation, quorum arithmetic, and the paper's bounds.
#include <gtest/gtest.h>

#include "consensus/types.hpp"

namespace twostep::consensus {
namespace {

TEST(Value, DefaultIsBottom) {
  Value v;
  EXPECT_TRUE(v.is_bottom());
  EXPECT_EQ(v, Value::bottom());
  EXPECT_THROW((void)v.get(), std::logic_error);
}

TEST(Value, ProperValueRoundTrips) {
  Value v{42};
  EXPECT_FALSE(v.is_bottom());
  EXPECT_EQ(v.get(), 42);
}

TEST(Value, BottomIsBelowEverything) {
  const Value bottom;
  EXPECT_LT(bottom, Value{-1000000});
  EXPECT_LT(bottom, Value{0});
  EXPECT_LE(bottom, bottom);
  EXPECT_FALSE(bottom < bottom);
}

TEST(Value, TotalOrderOnPayload) {
  EXPECT_LT(Value{1}, Value{2});
  EXPECT_GT(Value{5}, Value{-5});
  EXPECT_GE(Value{3}, Value{3});
  EXPECT_EQ(Value{7}, Value{7});
  EXPECT_NE(Value{7}, Value{8});
  EXPECT_NE(Value{7}, Value::bottom());
}

TEST(Value, ToString) {
  EXPECT_EQ(Value{12}.to_string(), "12");
  EXPECT_EQ(Value::bottom().to_string(), "\xe2\x8a\xa5");
}

TEST(Value, HashDistinguishesBottom) {
  const std::hash<Value> h;
  EXPECT_NE(h(Value::bottom()), h(Value{0}));
  EXPECT_EQ(h(Value{5}), h(Value{5}));
}

TEST(SystemConfig, ValidatesThresholds) {
  EXPECT_NO_THROW(SystemConfig(3, 1, 1));
  EXPECT_THROW(SystemConfig(0, 0, 0), std::invalid_argument);
  EXPECT_THROW(SystemConfig(3, 1, 2), std::invalid_argument);  // e > f
  EXPECT_THROW(SystemConfig(3, -1, 0), std::invalid_argument);
}

TEST(SystemConfig, QuorumSizes) {
  const SystemConfig c{5, 2, 1};
  EXPECT_EQ(c.classic_quorum(), 3);
  EXPECT_EQ(c.fast_quorum(), 4);
}

TEST(SystemConfig, TaskBoundMatchesTheorem5) {
  // n >= max{2e+f, 2f+1}
  EXPECT_EQ(SystemConfig::min_processes_task(1, 1), 3);
  EXPECT_EQ(SystemConfig::min_processes_task(1, 2), 5);
  EXPECT_EQ(SystemConfig::min_processes_task(2, 2), 6);
  EXPECT_EQ(SystemConfig::min_processes_task(2, 3), 7);
  EXPECT_EQ(SystemConfig::min_processes_task(3, 3), 9);
}

TEST(SystemConfig, ObjectBoundMatchesTheorem6) {
  // n >= max{2e+f-1, 2f+1}
  EXPECT_EQ(SystemConfig::min_processes_object(1, 1), 3);
  EXPECT_EQ(SystemConfig::min_processes_object(1, 2), 5);
  EXPECT_EQ(SystemConfig::min_processes_object(2, 2), 5);
  EXPECT_EQ(SystemConfig::min_processes_object(2, 3), 7);
  EXPECT_EQ(SystemConfig::min_processes_object(3, 3), 8);
}

TEST(SystemConfig, FastPaxosBoundIsLamports) {
  // n >= max{2e+f+1, 2f+1}
  EXPECT_EQ(SystemConfig::min_processes_fast_paxos(1, 1), 4);
  EXPECT_EQ(SystemConfig::min_processes_fast_paxos(1, 2), 5);
  EXPECT_EQ(SystemConfig::min_processes_fast_paxos(2, 2), 7);
  EXPECT_EQ(SystemConfig::min_processes_fast_paxos(3, 3), 10);
}

TEST(SystemConfig, PaperHeadlineExample) {
  // The EPaxos operating point from the paper's introduction:
  // e = ceil((f+1)/2) with 2f+1 = 2e+f-1, i.e. even f, so that an object
  // protocol fits in 2f+1 processes...
  const int f = 2;
  const int e = (f + 2) / 2;  // ceil((f+1)/2) for even f
  EXPECT_EQ(e, 2);
  EXPECT_EQ(SystemConfig::min_processes_object(e, f), 2 * f + 1);
  // ...while Lamport's bound would demand two more processes (2f+3).
  EXPECT_EQ(SystemConfig::min_processes_fast_paxos(e, f), 2 * f + 3);
}

TEST(SystemConfig, BoundOrderingAlwaysObjectLeTaskLeFast) {
  for (int f = 1; f <= 6; ++f) {
    for (int e = 0; e <= f; ++e) {
      const int object = SystemConfig::min_processes_object(e, f);
      const int task = SystemConfig::min_processes_task(e, f);
      const int fast = SystemConfig::min_processes_fast_paxos(e, f);
      EXPECT_LE(object, task);
      EXPECT_LE(task, fast);
      EXPECT_GE(object, SystemConfig::min_processes_paxos(f));
    }
  }
}

}  // namespace
}  // namespace twostep::consensus
