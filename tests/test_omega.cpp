// Tests for the Ω leader-election module: the oracle and the heartbeat
// failure detector (eventual agreement on the lowest correct process under
// partial synchrony, §C.1).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/latency.hpp"
#include "net/network.hpp"
#include "omega/omega.hpp"
#include "sim/simulator.hpp"

namespace twostep::omega {
namespace {

using consensus::ProcessId;

TEST(OmegaOracle, LeaderIsLowestAlive) {
  std::vector<bool> alive = {true, true, true};
  OmegaOracle o{[&](ProcessId p) { return alive[static_cast<std::size_t>(p)]; }, 3};
  EXPECT_EQ(o.leader(), 0);
  alive[0] = false;
  EXPECT_EQ(o.leader(), 1);
  alive[1] = false;
  EXPECT_EQ(o.leader(), 2);
}

TEST(OmegaOracle, NoLeaderWhenAllDead) {
  OmegaOracle o{[](ProcessId) { return false; }, 3};
  EXPECT_EQ(o.leader(), consensus::kNoProcess);
}

TEST(OmegaOracle, RejectsBadArguments) {
  EXPECT_THROW(OmegaOracle(nullptr, 3), std::invalid_argument);
  EXPECT_THROW(OmegaOracle([](ProcessId) { return true; }, 0), std::invalid_argument);
}

/// Harness: n HeartbeatOmega instances over a simulated network.
class HeartbeatFixture {
 public:
  HeartbeatFixture(int n, sim::Tick period, sim::Tick timeout,
                   std::unique_ptr<net::LatencyModel> model, std::uint64_t seed = 1)
      : net_(sim_, std::move(model), n, seed) {
    timer_owner_.resize(1, -1);  // timer ids are global; index 0 unused
    for (ProcessId p = 0; p < n; ++p) {
      HeartbeatOmega::Hooks hooks;
      hooks.send_heartbeat = [this, p](ProcessId to) { net_.send(p, to, Heartbeat{}); };
      hooks.set_timer = [this, p](sim::Tick delay) {
        const consensus::TimerId id{next_timer_++};
        timer_owner_.push_back(p);
        sim_.schedule_after(delay, [this, p, id] {
          if (net_.crashed(p)) return;
          detectors_[static_cast<std::size_t>(p)]->handle_timer(id);
        });
        return id;
      };
      hooks.now = [this] { return sim_.now(); };
      detectors_.push_back(std::make_unique<HeartbeatOmega>(n, p, period, timeout, hooks));
      net_.set_handler(p, [this, p](ProcessId from, const Heartbeat&) {
        detectors_[static_cast<std::size_t>(p)]->on_heartbeat(from);
      });
    }
  }

  void start_all() {
    for (auto& d : detectors_) d->start();
  }

  HeartbeatOmega& detector(ProcessId p) { return *detectors_[static_cast<std::size_t>(p)]; }
  sim::Simulator& sim() { return sim_; }
  net::Network<Heartbeat>& net() { return net_; }

 private:
  sim::Simulator sim_;
  net::Network<Heartbeat> net_;
  std::vector<std::unique_ptr<HeartbeatOmega>> detectors_;
  std::uint64_t next_timer_ = 1;
  std::vector<ProcessId> timer_owner_;
};

TEST(HeartbeatOmega, FailureFreeElectsP0) {
  HeartbeatFixture f{4, /*period=*/50, /*timeout=*/200,
                     std::make_unique<net::FixedDelay>(10)};
  f.start_all();
  f.sim().run_until(2000);
  for (ProcessId p = 0; p < 4; ++p) EXPECT_EQ(f.detector(p).leader(), 0) << "p" << p;
}

TEST(HeartbeatOmega, CrashedLeaderIsReplaced) {
  HeartbeatFixture f{4, 50, 200, std::make_unique<net::FixedDelay>(10)};
  f.start_all();
  f.net().crash_at(500, 0);
  f.sim().run_until(2000);
  for (ProcessId p = 1; p < 4; ++p) {
    EXPECT_TRUE(f.detector(p).suspects(0)) << "p" << p;
    EXPECT_EQ(f.detector(p).leader(), 1) << "p" << p;
  }
}

TEST(HeartbeatOmega, CascadingCrashes) {
  HeartbeatFixture f{5, 50, 200, std::make_unique<net::FixedDelay>(10)};
  f.start_all();
  f.net().crash_at(500, 0);
  f.net().crash_at(1000, 1);
  f.sim().run_until(3000);
  for (ProcessId p = 2; p < 5; ++p) EXPECT_EQ(f.detector(p).leader(), 2) << "p" << p;
}

TEST(HeartbeatOmega, ConvergesAfterGst) {
  // Chaotic delays before GST may cause false suspicions; after GST with
  // timeout >= delta + period all correct processes re-agree on p0.
  HeartbeatFixture f{4, 50, 200,
                     std::make_unique<net::PartialSynchrony>(/*gst=*/2000, /*delta=*/100,
                                                             /*chaos=*/1500),
                     /*seed=*/7};
  f.start_all();
  f.sim().run_until(6000);
  for (ProcessId p = 0; p < 4; ++p) EXPECT_EQ(f.detector(p).leader(), 0) << "p" << p;
}

TEST(HeartbeatOmega, SelfIsNeverSuspected) {
  HeartbeatFixture f{3, 50, 200, std::make_unique<net::FixedDelay>(10)};
  f.start_all();
  f.sim().run_until(1000);
  for (ProcessId p = 0; p < 3; ++p) EXPECT_FALSE(f.detector(p).suspects(p));
}

TEST(HeartbeatOmega, ValidatesConstruction) {
  HeartbeatOmega::Hooks hooks;
  hooks.send_heartbeat = [](ProcessId) {};
  hooks.set_timer = [](sim::Tick) { return consensus::TimerId{1}; };
  hooks.now = [] { return sim::Tick{0}; };
  EXPECT_THROW(HeartbeatOmega(0, 0, 50, 200, hooks), std::invalid_argument);
  EXPECT_THROW(HeartbeatOmega(3, 5, 50, 200, hooks), std::invalid_argument);
  EXPECT_THROW(HeartbeatOmega(3, 0, 0, 200, hooks), std::invalid_argument);
  EXPECT_THROW(HeartbeatOmega(3, 0, 300, 200, hooks), std::invalid_argument);
  EXPECT_THROW(HeartbeatOmega(3, 0, 50, 200, HeartbeatOmega::Hooks{}), std::invalid_argument);
}

TEST(HeartbeatOmega, HandleTimerRejectsForeignIds) {
  HeartbeatFixture f{3, 50, 200, std::make_unique<net::FixedDelay>(10)};
  f.start_all();
  EXPECT_FALSE(f.detector(0).handle_timer(consensus::TimerId{9999}));
}

}  // namespace
}  // namespace twostep::omega
