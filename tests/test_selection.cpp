// Tests for the slow-ballot value-selection rule (Figure 1, lines 22-31) —
// the heart of the paper's upper bound.  Includes direct unit tests of each
// branch and a property suite that mechanizes Lemma 7 (task, n >= 2e+f) and
// Lemma C.2 (object, n >= 2e+f-1): whenever a value is decided on the fast
// path, EVERY quorum of 1B snapshots must make the rule select that value.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/selection.hpp"
#include "util/combinatorics.hpp"
#include "util/rng.hpp"

namespace twostep::core {
namespace {

using consensus::kNoProcess;
using consensus::ProcessId;
using consensus::SystemConfig;
using consensus::Value;

PeerState peer(ProcessId q, consensus::Ballot vbal, Value val, ProcessId proposer,
               Value decided = Value::bottom()) {
  return PeerState{q, vbal, val, proposer, decided, Value::bottom()};
}

// ---------- direct branch tests ----------

TEST(SelectValue, DecidedBranchWins) {
  SelectionInput in;
  in.config = SystemConfig{5, 2, 1};
  in.own_initial = Value{9};
  in.peers = {peer(0, 3, Value{1}, kNoProcess), peer(1, 0, Value{2}, 4, Value{7}),
              peer(2, 0, Value::bottom(), kNoProcess)};
  const auto r = select_value(in);
  EXPECT_EQ(r.branch, SelectionBranch::kDecided);
  EXPECT_EQ(r.value, Value{7});
}

TEST(SelectValue, HighestBallotBranch) {
  SelectionInput in;
  in.config = SystemConfig{5, 2, 1};
  in.own_initial = Value{9};
  in.peers = {peer(0, 2, Value{1}, kNoProcess), peer(1, 5, Value{2}, kNoProcess),
              peer(2, 3, Value{3}, kNoProcess)};
  const auto r = select_value(in);
  EXPECT_EQ(r.branch, SelectionBranch::kHighestBallot);
  EXPECT_EQ(r.value, Value{2});
}

TEST(SelectValue, AboveThresholdRecoversFastValue) {
  // n=5, f=1, e=1: threshold n-f-e = 3.  Four ballot-0 votes for 8 whose
  // proposer (p9... well, p4) is outside Q.
  SelectionInput in;
  in.config = SystemConfig{5, 1, 1};
  in.own_initial = Value{1};
  in.peers = {peer(0, 0, Value{8}, 4), peer(1, 0, Value{8}, 4), peer(2, 0, Value{8}, 4),
              peer(3, 0, Value{8}, 4)};
  const auto r = select_value(in);
  EXPECT_EQ(r.branch, SelectionBranch::kAboveThreshold);
  EXPECT_EQ(r.value, Value{8});
}

TEST(SelectValue, ProposerInQuorumVotesAreExcluded) {
  // Same votes, but the proposer p3 of value 8 is itself in Q: those votes
  // cannot correspond to a (possible) fast decision and are excluded, so the
  // leader falls through to its own initial value.
  SelectionInput in;
  in.config = SystemConfig{5, 1, 1};
  in.own_initial = Value{1};
  in.peers = {peer(0, 0, Value{8}, 3), peer(1, 0, Value{8}, 3), peer(2, 0, Value{8}, 3),
              peer(3, 0, Value{8}, 3)};
  const auto r = select_value(in);
  EXPECT_EQ(r.branch, SelectionBranch::kOwnInitial);
  EXPECT_EQ(r.value, Value{1});
}

TEST(SelectValue, NoProposerExclusionPolicyKeepsThem) {
  SelectionInput in;
  in.config = SystemConfig{5, 1, 1};
  in.own_initial = Value{1};
  in.policy = SelectionPolicy::kNoProposerExclusion;
  in.peers = {peer(0, 0, Value{8}, 3), peer(1, 0, Value{8}, 3), peer(2, 0, Value{8}, 3),
              peer(3, 0, Value{8}, 3)};
  const auto r = select_value(in);
  EXPECT_EQ(r.branch, SelectionBranch::kAboveThreshold);
  EXPECT_EQ(r.value, Value{8});
}

TEST(SelectValue, AtThresholdPicksMaximum) {
  // n=6, f=2, e=2 (task bound 2e+f=6): threshold = 2.  Two candidates with
  // exactly two votes each; the fast path only accepts proposals >= one's
  // own, so the *maximum* candidate is the only possibly-decided one.
  SelectionInput in;
  in.config = SystemConfig{6, 2, 2};
  in.own_initial = Value{1};
  in.peers = {peer(0, 0, Value{8}, 4), peer(1, 0, Value{8}, 4), peer(2, 0, Value{5}, 5),
              peer(3, 0, Value{5}, 5)};
  const auto r = select_value(in);
  EXPECT_EQ(r.branch, SelectionBranch::kAtThresholdMax);
  EXPECT_EQ(r.value, Value{8});
}

TEST(SelectValue, NoMaxTieBreakPolicyPicksMinimum) {
  SelectionInput in;
  in.config = SystemConfig{6, 2, 2};
  in.own_initial = Value{1};
  in.policy = SelectionPolicy::kNoMaxTieBreak;
  in.peers = {peer(0, 0, Value{8}, 4), peer(1, 0, Value{8}, 4), peer(2, 0, Value{5}, 5),
              peer(3, 0, Value{5}, 5)};
  const auto r = select_value(in);
  EXPECT_EQ(r.value, Value{5});
}

TEST(SelectValue, NoThresholdBranchPolicySkipsEquality) {
  SelectionInput in;
  in.config = SystemConfig{6, 2, 2};
  in.own_initial = Value{1};
  in.policy = SelectionPolicy::kNoThresholdBranch;
  in.peers = {peer(0, 0, Value{8}, 4), peer(1, 0, Value{8}, 4), peer(2, 0, Value{5}, 5),
              peer(3, 0, Value{5}, 5)};
  const auto r = select_value(in);
  EXPECT_EQ(r.branch, SelectionBranch::kOwnInitial);
}

TEST(SelectValue, OwnInitialFallback) {
  SelectionInput in;
  in.config = SystemConfig{5, 2, 1};
  in.own_initial = Value{3};
  in.peers = {peer(0, 0, Value::bottom(), kNoProcess), peer(1, 0, Value::bottom(), kNoProcess),
              peer(2, 0, Value::bottom(), kNoProcess)};
  const auto r = select_value(in);
  EXPECT_EQ(r.branch, SelectionBranch::kOwnInitial);
  EXPECT_EQ(r.value, Value{3});
}

TEST(SelectValue, CompletionAdoptsSeenVote) {
  // Leader never proposed; a single below-threshold vote exists.  The
  // liveness completion adopts it (see selection.hpp for the argument).
  SelectionInput in;
  in.config = SystemConfig{5, 1, 1};  // threshold 3
  in.own_initial = Value::bottom();
  in.peers = {peer(0, 0, Value{8}, 4), peer(1, 0, Value::bottom(), kNoProcess),
              peer(2, 0, Value::bottom(), kNoProcess), peer(3, 0, Value::bottom(), kNoProcess)};
  const auto r = select_value(in);
  EXPECT_EQ(r.branch, SelectionBranch::kCompletion);
  EXPECT_EQ(r.value, Value{8});
}

TEST(SelectValue, NothingToProposeYieldsNone) {
  SelectionInput in;
  in.config = SystemConfig{5, 2, 1};
  in.own_initial = Value::bottom();
  in.peers = {peer(0, 0, Value::bottom(), kNoProcess), peer(1, 0, Value::bottom(), kNoProcess),
              peer(2, 0, Value::bottom(), kNoProcess)};
  const auto r = select_value(in);
  EXPECT_EQ(r.branch, SelectionBranch::kNone);
  EXPECT_TRUE(r.value.is_bottom());
}

TEST(SelectValue, DecidedBeatsHighestBallot) {
  SelectionInput in;
  in.config = SystemConfig{5, 2, 1};
  in.own_initial = Value::bottom();
  in.peers = {peer(0, 9, Value{1}, kNoProcess), peer(1, 0, Value{2}, 4, Value{2}),
              peer(2, 0, Value::bottom(), kNoProcess)};
  EXPECT_EQ(select_value(in).value, Value{2});
}

// ---------- Lemma 7 / Lemma C.2 property suite ----------
//
// Mini-simulation of the fast ballot: every process proposes a value;
// Propose messages are delivered in a random global priority order; each
// process votes for the first acceptable proposal per Figure 1 line 7 (plus
// the red condition in object mode).  If some proposer gathered a fast
// quorum, the lemma requires every (n-f)-quorum's 1B snapshot to select it.

struct FastBallotState {
  std::vector<Value> initial;        // per process
  std::vector<Value> vote;           // val
  std::vector<ProcessId> proposer;   // proposer of vote
  ProcessId fast_winner = kNoProcess;
  Value fast_value;
};

FastBallotState simulate_fast_ballot(const SystemConfig& cfg, bool object_mode,
                                     util::Rng& rng) {
  const int n = cfg.n;
  FastBallotState st;
  st.initial.resize(static_cast<std::size_t>(n));
  st.vote.assign(static_cast<std::size_t>(n), Value::bottom());
  st.proposer.assign(static_cast<std::size_t>(n), kNoProcess);

  // Random proposals from a small domain to force collisions; in object
  // mode some processes may not propose at all.
  std::vector<ProcessId> proposers;
  for (ProcessId p = 0; p < n; ++p) {
    if (object_mode && rng.next_bool(0.3)) continue;  // does not propose
    st.initial[static_cast<std::size_t>(p)] = Value{static_cast<std::int64_t>(rng.next_in(1, 4))};
    proposers.push_back(p);
  }

  // Random global delivery priority of the Propose broadcasts.
  std::shuffle(proposers.begin(), proposers.end(), rng);
  for (const ProcessId src : proposers) {
    const Value v = st.initial[static_cast<std::size_t>(src)];
    for (ProcessId dst = 0; dst < n; ++dst) {
      if (dst == src) continue;
      auto& vote = st.vote[static_cast<std::size_t>(dst)];
      const Value own = st.initial[static_cast<std::size_t>(dst)];
      if (!vote.is_bottom()) continue;             // already voted
      if (v < own) continue;                        // line 7: v >= initial_val
      if (object_mode && !own.is_bottom() && v != own) continue;  // red condition
      vote = v;
      st.proposer[static_cast<std::size_t>(dst)] = src;
    }
  }

  // Fast decision: proposer p wins if n-e processes incl. itself voted for
  // its value and p's own vote does not conflict.
  for (const ProcessId p : proposers) {
    const Value v = st.initial[static_cast<std::size_t>(p)];
    const Value own_vote = st.vote[static_cast<std::size_t>(p)];
    if (!own_vote.is_bottom() && own_vote != v) continue;
    int votes = 1;  // self
    for (ProcessId q = 0; q < n; ++q)
      if (q != p && st.vote[static_cast<std::size_t>(q)] == v &&
          st.proposer[static_cast<std::size_t>(q)] == p)
        ++votes;
    if (votes >= cfg.fast_quorum()) {
      st.fast_winner = p;
      st.fast_value = v;
      break;  // at most one winner can reach n-e in a single ballot sweep
    }
  }
  return st;
}

struct LemmaCase {
  int e;
  int f;
  bool object_mode;
};

class SelectionLemma : public ::testing::TestWithParam<LemmaCase> {};

TEST_P(SelectionLemma, FastDecisionsAreAlwaysRecovered) {
  const auto [e, f, object_mode] = GetParam();
  const int n = object_mode ? SystemConfig::min_processes_object(e, f)
                            : SystemConfig::min_processes_task(e, f);
  const SystemConfig cfg{n, f, e};
  util::Rng rng{0xBEEF + static_cast<std::uint64_t>(n * 100 + e * 10 + f)};

  int decided_states = 0;
  for (int iter = 0; iter < 400; ++iter) {
    const FastBallotState st = simulate_fast_ballot(cfg, object_mode, rng);
    if (st.fast_winner == kNoProcess) continue;
    ++decided_states;

    // Every quorum Q of size n-f must recover the fast value.
    util::for_each_combination(n, n - f, [&](const std::vector<int>& quorum) {
      SelectionInput in;
      in.config = cfg;
      in.own_initial = Value{100};  // a distinct leader value: must NOT win
      for (const int q : quorum) {
        const auto qi = static_cast<std::size_t>(q);
        const Value decided =
            q == st.fast_winner ? st.fast_value : Value::bottom();
        in.peers.push_back(PeerState{q, 0, st.vote[qi], st.proposer[qi], decided, st.initial[qi]});
      }
      const auto r = select_value(in);
      ASSERT_EQ(r.value, st.fast_value)
          << "quorum failed to recover fast decision (winner p" << st.fast_winner << ")";
    });
  }
  // The generator must actually produce fast decisions for the suite to
  // mean anything.
  EXPECT_GT(decided_states, 20);
}

INSTANTIATE_TEST_SUITE_P(
    Bounds, SelectionLemma,
    ::testing::Values(LemmaCase{1, 1, false}, LemmaCase{1, 2, false}, LemmaCase{2, 2, false},
                      LemmaCase{2, 3, false}, LemmaCase{3, 3, false}, LemmaCase{1, 1, true},
                      LemmaCase{1, 2, true}, LemmaCase{2, 2, true}, LemmaCase{2, 3, true},
                      LemmaCase{3, 3, true}, LemmaCase{3, 4, true}),
    [](const ::testing::TestParamInfo<LemmaCase>& info) {
      return (info.param.object_mode ? std::string("object_") : std::string("task_")) + "e" +
             std::to_string(info.param.e) + "f" + std::to_string(info.param.f);
    });

// Permutation-invariance property: the rule aggregates a SET of snapshots;
// the order in which the leader happened to receive the 1Bs must not change
// the selection (otherwise two leaders of the same ballot content could
// diverge).
TEST(SelectValueProperty, OrderIndependent) {
  util::Rng rng{31337};
  const SystemConfig cfg{6, 2, 2};
  for (int iter = 0; iter < 300; ++iter) {
    const FastBallotState st = simulate_fast_ballot(cfg, false, rng);
    SelectionInput in;
    in.config = cfg;
    in.own_initial = Value{50};
    for (int q = 0; q < cfg.classic_quorum(); ++q) {
      const auto qi = static_cast<std::size_t>(q);
      in.peers.push_back(
          PeerState{q, 0, st.vote[qi], st.proposer[qi], Value::bottom(), st.initial[qi]});
    }
    const auto baseline = select_value(in);
    for (int shuffle = 0; shuffle < 5; ++shuffle) {
      std::shuffle(in.peers.begin(), in.peers.end(), rng);
      const auto permuted = select_value(in);
      ASSERT_EQ(permuted.value, baseline.value);
      ASSERT_EQ(permuted.branch, baseline.branch);
    }
  }
}

// Validity property: whatever the state, the selected value is never
// invented — it is a proposal of some process or the leader's own.
TEST(SelectValueProperty, NeverInventsValues) {
  util::Rng rng{777};
  const SystemConfig cfg{6, 2, 2};
  for (int iter = 0; iter < 500; ++iter) {
    const FastBallotState st = simulate_fast_ballot(cfg, false, rng);
    SelectionInput in;
    in.config = cfg;
    in.own_initial = Value{50};
    for (int q = 0; q < cfg.classic_quorum(); ++q) {
      const auto qi = static_cast<std::size_t>(q);
      in.peers.push_back(PeerState{q, 0, st.vote[qi], st.proposer[qi], Value::bottom(), st.initial[qi]});
    }
    const auto r = select_value(in);
    if (r.branch == SelectionBranch::kNone) continue;
    const bool proposed =
        r.value == in.own_initial ||
        std::any_of(st.initial.begin(), st.initial.end(),
                    [&](Value v) { return v == r.value; });
    ASSERT_TRUE(proposed) << "selection invented value " << r.value.to_string();
  }
}

}  // namespace
}  // namespace twostep::core
