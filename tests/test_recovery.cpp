// Crash-recovery conformance for the live node runtime.
//
// These tests kill real replicas (sockets die, peers see resets), restart
// them on the same port against the same write-ahead log, and assert the
// cluster's observable behavior matches the no-crash simulator oracle:
// same applied log, agreement everywhere, recovered state visible in the
// recover.* metrics.  The Live* suite names keep this file in the TSan CI
// shard — kill/restart while a workload is in flight is exactly where a
// threading bug in the runtime would surface.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "consensus/types.hpp"
#include "core/two_step.hpp"
#include "harness/run_spec.hpp"
#include "node/client.hpp"
#include "node/loadgen.hpp"
#include "node/local_cluster.hpp"
#include "node/runtime.hpp"
#include "rsm/rsm.hpp"

namespace twostep {
namespace {

using consensus::Value;

constexpr sim::Tick kLiveDeltaUs = 100'000;  // 100 ms

class TempDir {
 public:
  TempDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "twostep-recovery-XXXXXX").string();
    dir_ = ::mkdtemp(tmpl.data());
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  [[nodiscard]] const std::string& path() const noexcept { return dir_; }

 private:
  std::string dir_;
};

node::ClusterOptions storage_options(const TempDir& tmp) {
  node::ClusterOptions options;
  options.storage.dir = tmp.path();
  options.storage.fsync = false;  // throwaway data; the discipline, not the device
  return options;
}

rsm::Options rsm_options(obs::MetricsRegistry& reg) {
  rsm::Options options;
  options.delta = kLiveDeltaUs;
  options.leader_of = [] { return consensus::ProcessId{0}; };
  options.probe.metrics = &reg;
  return options;
}

template <typename Cluster>
void wait_all_applied(Cluster& cluster, int n, std::size_t target) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    bool all = true;
    for (int p = 0; p < n; ++p)
      if (!cluster.alive(p) || cluster.node(p).applied_log().size() < target) all = false;
    if (all) return;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "replicas did not apply " << target << " commands in time";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

TEST(LiveRecovery, RestartedReplicaRecoversDecisionFromWalAlone) {
  TempDir tmp;
  const consensus::SystemConfig config(3, 1, 1);
  const auto make = [&](consensus::Env<core::Message>& env, obs::MetricsRegistry& reg,
                        consensus::ProcessId) {
    core::Options options;
    options.mode = core::Mode::kObject;
    options.delta = kLiveDeltaUs;
    options.leader_of = [] { return consensus::ProcessId{0}; };
    options.probe.metrics = &reg;
    return std::make_unique<core::TwoStepProcess>(env, config, options);
  };
  {
    node::LocalCluster<core::TwoStepProcess> cluster(config.n, make, storage_options(tmp));
    ASSERT_TRUE(cluster.wait_for_mesh());
    node::ClientSession client(cluster.endpoints()[0], nullptr);
    ASSERT_TRUE(client.connect());
    const auto reply = client.call(1234);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->value, 1234);
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
    for (;;) {
      bool all = true;
      for (int p = 0; p < config.n; ++p)
        if (!cluster.node(p).has_decided()) all = false;
      if (all) break;
      ASSERT_LT(std::chrono::steady_clock::now(), deadline);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    cluster.stop();
  }
  // Rebuild replica 0 from its WAL with NO network started and NO messages
  // delivered: the decision must come back from disk alone, and the
  // recovery must be observable in the metrics.
  node::RuntimeOptions options;
  options.storage = node::StorageOptions{tmp.path() + "/r0", false};
  node::Runtime<core::TwoStepProcess> reborn(
      0, config.n, transport::Endpoint{"127.0.0.1", 0},
      [&](consensus::Env<core::Message>& env, obs::MetricsRegistry& reg) {
        return make(env, reg, 0);
      },
      options);
  EXPECT_TRUE(reborn.has_decided());
  EXPECT_EQ(reborn.decided_value(), Value{1234});
  EXPECT_EQ(reborn.metrics().counter_value("recover.decided"), 1u);
  EXPECT_GT(reborn.metrics().counter_value("wal.recovered_records"), 0u);
}

TEST(LiveRecovery, KillRestartConformsToSimulatorOracle) {
  // A replica crashes mid-stream and recovers from its WAL; the surviving
  // pair keeps committing through the outage (n=3, f=1).  Afterwards every
  // replica — including the reborn one — must hold exactly the log the
  // no-crash simulator oracle produces for the same command sequence.
  const consensus::SystemConfig config(3, 1, 1);
  const std::vector<std::int64_t> payloads = {5, 17, 3, 29, 11, 2, 23, 8, 31, 13, 7, 19};

  auto runner = harness::RunSpec(config).delta(100).seed(1).rsm();
  consensus::SyncScenario scenario;
  for (const std::int64_t payload : payloads) scenario.proposals.push_back({0, Value{payload}});
  runner->run(scenario);
  std::vector<std::pair<std::int32_t, std::int64_t>> oracle;
  auto& sim_proc = runner->cluster().process(0);
  for (std::int32_t slot = 0; slot < sim_proc.applied_prefix(); ++slot)
    oracle.emplace_back(slot, *sim_proc.decision(slot));
  ASSERT_EQ(oracle.size(), payloads.size());

  TempDir tmp;
  node::LocalCluster<rsm::RsmProcess> cluster(
      config.n,
      [&](consensus::Env<rsm::Msg>& env, obs::MetricsRegistry& reg, consensus::ProcessId) {
        return std::make_unique<rsm::RsmProcess>(env, config, rsm_options(reg));
      },
      storage_options(tmp));
  ASSERT_TRUE(cluster.wait_for_mesh());
  node::ClientSession client(cluster.endpoints()[0], nullptr);
  ASSERT_TRUE(client.connect());

  // Phase 1: a third of the stream with everyone up.
  std::size_t i = 0;
  for (; i < payloads.size() / 3; ++i) ASSERT_TRUE(client.call(payloads[i]).has_value());
  // Phase 2: replica 1 is dead; the {0, 2} majority keeps committing.
  cluster.kill(1);
  ASSERT_FALSE(cluster.alive(1));
  for (; i < 2 * payloads.size() / 3; ++i) ASSERT_TRUE(client.call(payloads[i]).has_value());
  // Phase 3: replica 1 is reborn from its WAL on the same port and must
  // catch up on what it missed.
  cluster.restart(1);
  ASSERT_TRUE(cluster.alive(1));
  for (; i < payloads.size(); ++i) ASSERT_TRUE(client.call(payloads[i]).has_value());

  wait_all_applied(cluster, config.n, payloads.size());
  const auto log0 = cluster.node(0).applied_log();
  const auto log1 = cluster.node(1).applied_log();
  const auto log2 = cluster.node(2).applied_log();
  cluster.stop();

  EXPECT_EQ(log0, oracle);
  EXPECT_EQ(log1, oracle);
  EXPECT_EQ(log2, oracle);

  // The reborn replica provably recovered state from disk rather than
  // starting cold.
  obs::MetricsRegistry merged = cluster.merged_metrics();
  EXPECT_GT(merged.counter_value("recover.slots"), 0u);
  EXPECT_GT(merged.counter_value("wal.recovered_records"), 0u);
}

TEST(LiveRecovery, ClientFailsOverWhenItsProxyIsKilled) {
  // The client's own proxy dies under an in-flight workload; the session
  // must redial another replica and finish the stream without losing a
  // command.  Runs under TSan in CI: a kill tears down one runtime's loop
  // thread while two others and the client thread keep going.
  const consensus::SystemConfig config(3, 1, 1);
  TempDir tmp;
  node::LocalCluster<rsm::RsmProcess> cluster(
      config.n,
      [&](consensus::Env<rsm::Msg>& env, obs::MetricsRegistry& reg, consensus::ProcessId) {
        return std::make_unique<rsm::RsmProcess>(env, config, rsm_options(reg));
      },
      storage_options(tmp));
  ASSERT_TRUE(cluster.wait_for_mesh());

  obs::MetricsRegistry client_metrics;
  node::ClientSession client(cluster.endpoints(), &client_metrics);
  ASSERT_TRUE(client.connect());

  constexpr std::int64_t kCommands = 60;
  std::int64_t ok = 0;
  std::set<std::int64_t> acked;
  for (std::int64_t c = 0; c < kCommands; ++c) {
    if (c == 20) cluster.kill(0);     // the proxy (and fixed leader) dies...
    if (c == 40) cluster.restart(0);  // ...and later rejoins from its WAL
    const auto reply = client.call(c);
    ASSERT_TRUE(reply.has_value()) << "command " << c << " lost";
    if (reply->ok) {
      ++ok;
      acked.insert(c);
    }
  }
  EXPECT_EQ(ok, kCommands);
  EXPECT_GE(client_metrics.counter_value("client.failovers"), 1u);

  // Every replica converges on one log that contains every acked command
  // (duplicates after a failover retry are legal; divergence is not).
  wait_all_applied(cluster, config.n, acked.size());
  const auto log0 = cluster.node(0).applied_log();
  for (int p = 1; p < config.n; ++p) {
    const auto log = cluster.node(p).applied_log();
    const std::size_t m = std::min(log0.size(), log.size());
    for (std::size_t k = 0; k < m; ++k)
      ASSERT_EQ(log0[k], log[k]) << "divergence at applied index " << k;
  }
  std::set<std::int64_t> applied_payloads;
  for (const auto& [slot, cmd] : log0)
    applied_payloads.insert(rsm::RsmProcess::command_payload(cmd));
  for (const std::int64_t c : acked) EXPECT_TRUE(applied_payloads.contains(c));
  cluster.stop();
}

TEST(LiveRecovery, GroupCommitCrashLosesNoAckedCommand) {
  // Group-commit WAL (N3): appends from many protocol entries share one
  // sync barrier, and replies are held until the barrier runs — so by the
  // time a client sees an ack, every vote backing it is durable.  Kill the
  // proxy mid-stream (at an arbitrary point relative to its barrier
  // timer), restart it from its WAL, and require every acked command in
  // every replica's log.  Batching is on, so a batch sealed just before
  // the kill exercises the batch-record-before-slot-record capture order.
  const consensus::SystemConfig config(3, 1, 1);
  TempDir tmp;
  node::ClusterOptions cluster_options = storage_options(tmp);
  cluster_options.storage.group_commit_us = 500;
  node::LocalCluster<rsm::RsmProcess> cluster(
      config.n,
      [&](consensus::Env<rsm::Msg>& env, obs::MetricsRegistry& reg, consensus::ProcessId) {
        rsm::Options options = rsm_options(reg);
        options.batch_max = 8;
        options.batch_linger = 300;
        options.pipeline_window = 8;
        options.batch_fill = &reg.log_histogram("rsm.batch_fill");
        return std::make_unique<rsm::RsmProcess>(env, config, options);
      },
      cluster_options);
  ASSERT_TRUE(cluster.wait_for_mesh());

  obs::MetricsRegistry client_metrics;
  node::ClientSession client(cluster.endpoints(), &client_metrics);
  ASSERT_TRUE(client.connect());

  constexpr std::int64_t kCommands = 60;
  std::set<std::int64_t> acked;
  for (std::int64_t c = 0; c < kCommands; ++c) {
    if (c == 25) cluster.kill(0);     // proxy + fixed leader dies...
    if (c == 45) cluster.restart(0);  // ...and rejoins from its WAL
    const auto reply = client.call(c);
    ASSERT_TRUE(reply.has_value()) << "command " << c << " lost";
    if (reply->ok) acked.insert(c);
  }
  EXPECT_EQ(static_cast<std::int64_t>(acked.size()), kCommands);

  wait_all_applied(cluster, config.n, acked.size());
  const auto log0 = cluster.node(0).applied_log();
  for (int p = 1; p < config.n; ++p) {
    const auto log = cluster.node(p).applied_log();
    const std::size_t m = std::min(log0.size(), log.size());
    for (std::size_t k = 0; k < m; ++k)
      ASSERT_EQ(log0[k], log[k]) << "divergence at applied index " << k;
  }
  std::set<std::int64_t> applied_payloads;
  for (const auto& [slot, cmd] : log0)
    applied_payloads.insert(rsm::RsmProcess::command_payload(cmd));
  for (const std::int64_t c : acked)
    EXPECT_TRUE(applied_payloads.contains(c)) << "acked command " << c << " not durable";
  cluster.stop();

  // The barrier path actually ran (this is not the per-entry fallback),
  // and the reborn replica recovered batch sidecar records from disk.
  obs::MetricsRegistry merged = cluster.merged_metrics();
  EXPECT_GT(merged.counter_value("wal.barriers"), 0u);
  EXPECT_GT(merged.counter_value("recover.slots"), 0u);
}

TEST(LiveRecovery, BatchedWorkloadRecoversBatchContentsFromWalAlone) {
  // A replica that decided batched slots must recover the batch CONTENTS
  // from its own WAL — a handle without its payload list would stall
  // application forever on restart.  Drive an open-loop burst (a single
  // closed-loop client never coalesces: a batch of one proposes the plain
  // command), then rebuild replica 0 from disk with no network and require
  // the full expanded log.
  const consensus::SystemConfig config(3, 1, 1);
  TempDir tmp;
  const auto make = [&](consensus::Env<rsm::Msg>& env, obs::MetricsRegistry& reg,
                        consensus::ProcessId) {
    rsm::Options options = rsm_options(reg);
    options.batch_max = 8;
    options.batch_linger = 500;
    options.batch_fill = &reg.log_histogram("rsm.batch_fill");
    return std::make_unique<rsm::RsmProcess>(env, config, options);
  };
  std::vector<std::pair<std::int32_t, std::int64_t>> live_log;
  {
    node::ClusterOptions cluster_options = storage_options(tmp);
    cluster_options.storage.group_commit_us = 300;
    node::LocalCluster<rsm::RsmProcess> cluster(config.n, make, cluster_options);
    ASSERT_TRUE(cluster.wait_for_mesh());
    node::LoadgenOptions gen_options;
    gen_options.rate = 2'000;
    gen_options.sessions = 32;
    gen_options.connections = 4;
    gen_options.duration_ms = 400;
    gen_options.drain_ms = 5'000;
    node::OpenLoopLoadgen gen(cluster.endpoints(), gen_options);
    const node::LoadResult result = gen.run();
    ASSERT_GT(result.ok, 0);
    ASSERT_EQ(result.lost, 0);
    wait_all_applied(cluster, config.n, static_cast<std::size_t>(result.ok));
    live_log = cluster.node(0).applied_log();
    cluster.stop();
    // The workload must actually have exercised batching (a sealed batch
    // of > 1 command), or the recovery assertion below is vacuous.
    obs::MetricsRegistry merged = cluster.merged_metrics();
    ASSERT_GT(merged.log_histogram_snapshot("rsm.batch_fill").max, 1.0);
  }
  ASSERT_GE(live_log.size(), 2u);

  node::RuntimeOptions options;
  options.storage = node::StorageOptions{tmp.path() + "/r0", false};
  node::Runtime<rsm::RsmProcess> reborn(
      0, config.n, transport::Endpoint{"127.0.0.1", 0},
      [&](consensus::Env<rsm::Msg>& env, obs::MetricsRegistry& reg) { return make(env, reg, 0); },
      options);
  const auto reborn_log = reborn.applied_log();
  // The WAL may hold decisions beyond the snapshot instant (commands acked
  // between the applied-count check and stop), so require the live log to
  // be a prefix of the recovered one, never the other way around.
  ASSERT_GE(reborn_log.size(), live_log.size());
  for (std::size_t k = 0; k < live_log.size(); ++k)
    ASSERT_EQ(reborn_log[k], live_log[k]) << "recovered log diverges at index " << k;
  EXPECT_GT(reborn.metrics().counter_value("recover.batches"), 0u);
}

TEST(LiveRecovery, SnapshotRecoveryRestoresTheLogWithoutGenesisReplay) {
  // Periodic snapshots + WAL truncation: a replica reborn from disk must
  // come back from snapshot-install + tail replay — the compacted prefix
  // no longer exists as WAL records — and still hold the same applied log
  // the live cluster produced.
  const consensus::SystemConfig config(3, 1, 1);
  TempDir tmp;
  const auto make = [&](consensus::Env<rsm::Msg>& env, obs::MetricsRegistry& reg,
                        consensus::ProcessId) {
    return std::make_unique<rsm::RsmProcess>(env, config, rsm_options(reg));
  };
  std::vector<std::pair<std::int32_t, std::int64_t>> live_log;
  {
    node::ClusterOptions cluster_options = storage_options(tmp);
    cluster_options.storage.snapshot_every = 8;     // checkpoint aggressively
    cluster_options.storage.wal_segment_bytes = 1024;  // many small segments
    node::LocalCluster<rsm::RsmProcess> cluster(config.n, make, cluster_options);
    ASSERT_TRUE(cluster.wait_for_mesh());
    node::ClientSession client(cluster.endpoints()[0], nullptr);
    ASSERT_TRUE(client.connect());
    constexpr std::int64_t kCommands = 40;
    for (std::int64_t c = 0; c < kCommands; ++c)
      ASSERT_TRUE(client.call(c).has_value()) << "command " << c << " lost";
    wait_all_applied(cluster, config.n, kCommands);
    live_log = cluster.node(0).applied_log();
    cluster.stop();
    obs::MetricsRegistry merged = cluster.merged_metrics();
    // The trigger fired and compaction actually dropped WAL records —
    // otherwise the recovery below is ordinary replay and proves nothing.
    ASSERT_GT(merged.counter_value("snapshot.written"), 0u);
    ASSERT_GT(merged.counter_value("wal.truncated_records"), 0u);
  }
  node::RuntimeOptions options;
  options.storage = node::StorageOptions{tmp.path() + "/r0", false};
  node::Runtime<rsm::RsmProcess> reborn(
      0, config.n, transport::Endpoint{"127.0.0.1", 0},
      [&](consensus::Env<rsm::Msg>& env, obs::MetricsRegistry& reg) { return make(env, reg, 0); },
      options);
  EXPECT_EQ(reborn.metrics().counter_value("snapshot.recovered"), 1u);
  const auto reborn_log = reborn.applied_log();
  ASSERT_GE(reborn_log.size(), live_log.size());
  for (std::size_t k = 0; k < live_log.size(); ++k)
    ASSERT_EQ(reborn_log[k], live_log[k]) << "recovered log diverges at index " << k;
}

TEST(LiveRecovery, WipedReplicaRejoinsViaSnapshotStateTransfer) {
  // A replica that lost its disk entirely rejoins a cluster whose peers
  // have COMPACTED below its (empty) state: Decide anti-entropy cannot
  // heal slots that no longer exist anywhere as slot state, so the rejoin
  // must go through the snapshot transfer path — offer, chunked fetch,
  // CRC check, install — and end prefix-consistent with everyone else.
  const consensus::SystemConfig config(3, 1, 1);
  TempDir tmp;
  node::ClusterOptions cluster_options = storage_options(tmp);
  cluster_options.storage.snapshot_every = 4;
  node::LocalCluster<rsm::RsmProcess> cluster(
      config.n,
      [&](consensus::Env<rsm::Msg>& env, obs::MetricsRegistry& reg, consensus::ProcessId) {
        return std::make_unique<rsm::RsmProcess>(env, config, rsm_options(reg));
      },
      cluster_options);
  ASSERT_TRUE(cluster.wait_for_mesh());
  node::ClientSession client(cluster.endpoints()[0], nullptr);
  ASSERT_TRUE(client.connect());

  constexpr std::int64_t kCommands = 60;
  std::int64_t c = 0;
  for (; c < kCommands / 3; ++c) ASSERT_TRUE(client.call(c).has_value());
  cluster.kill(2);
  // The surviving majority keeps committing AND keeps snapshotting: by the
  // time replica 2 returns, the cluster's compaction floor is beyond
  // everything it ever knew.
  for (; c < 2 * kCommands / 3; ++c) ASSERT_TRUE(client.call(c).has_value());
  // Replica 2 loses its disk entirely — the rebuild-from-nothing case.
  std::error_code ec;
  std::filesystem::remove_all(tmp.path() + "/r2", ec);
  ASSERT_FALSE(ec);
  cluster.restart(2);
  ASSERT_TRUE(cluster.alive(2));
  for (; c < kCommands; ++c) ASSERT_TRUE(client.call(c).has_value());

  wait_all_applied(cluster, config.n, kCommands);
  const auto log0 = cluster.node(0).applied_log();
  const auto log2 = cluster.node(2).applied_log();
  cluster.stop();
  ASSERT_EQ(log0.size(), log2.size());
  for (std::size_t k = 0; k < log0.size(); ++k)
    ASSERT_EQ(log0[k], log2[k]) << "rejoined replica diverges at applied index " << k;

  // The rejoin provably went through state transfer, not genesis replay.
  obs::MetricsRegistry merged = cluster.merged_metrics();
  EXPECT_GT(merged.counter_value("snapshot.written"), 0u);
  EXPECT_GE(merged.counter_value("transfer.installed"), 1u);
  EXPECT_GT(merged.counter_value("transfer.chunks_sent"), 0u);
}

TEST(LiveRecovery, ServerDeduplicatesRetriedRequestAcrossReconnects) {
  // Two sessions with the SAME client_id simulate a client that reconnects
  // and retries request id 1: the server must answer from its dedup cache
  // with the ORIGINAL command instead of executing the retry's payload.
  const consensus::SystemConfig config(3, 1, 1);
  node::LocalCluster<rsm::RsmProcess> cluster(
      config.n,
      [&](consensus::Env<rsm::Msg>& env, obs::MetricsRegistry& reg, consensus::ProcessId) {
        return std::make_unique<rsm::RsmProcess>(env, config, rsm_options(reg));
      });
  ASSERT_TRUE(cluster.wait_for_mesh());

  node::ClientOptions options;
  options.client_id = 77;
  std::int64_t first_value = 0;
  {
    node::ClientSession original(cluster.endpoints()[0], nullptr, options);
    ASSERT_TRUE(original.connect());
    const auto reply = original.call(5);
    ASSERT_TRUE(reply.has_value());
    ASSERT_TRUE(reply->ok);
    EXPECT_EQ(rsm::RsmProcess::command_payload(reply->value), 5);
    first_value = reply->value;
  }
  node::ClientSession retry(cluster.endpoints()[0], nullptr, options);
  ASSERT_TRUE(retry.connect());
  const auto replayed = retry.call(9);  // same (client_id=77, id=1), new payload
  ASSERT_TRUE(replayed.has_value());
  EXPECT_TRUE(replayed->ok);
  EXPECT_EQ(replayed->value, first_value) << "retry was re-executed, not deduplicated";
  cluster.stop();
}

TEST(CrashScheduleTest, IsSeededBoundedAndNonOverlapping) {
  const auto a = node::CrashSchedule::generate(42, 5, 2, 10'000, 400, 150);
  const auto b = node::CrashSchedule::generate(42, 5, 2, 10'000, 400, 150);
  const auto c = node::CrashSchedule::generate(43, 5, 2, 10'000, 400, 150);
  ASSERT_FALSE(a.rounds.empty());
  // Same seed, same timeline; a different seed diverges somewhere.
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  bool all_equal = a.rounds.size() == c.rounds.size();
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].at_ms, b.rounds[i].at_ms);
    EXPECT_EQ(a.rounds[i].replicas, b.rounds[i].replicas);
    if (all_equal && (a.rounds[i].at_ms != c.rounds[i].at_ms ||
                      a.rounds[i].replicas != c.rounds[i].replicas))
      all_equal = false;
  }
  EXPECT_FALSE(all_equal);

  std::int64_t prev_end = -1;
  for (const node::CrashRound& round : a.rounds) {
    // At most f distinct replicas per round, all valid ids.
    EXPECT_GE(round.replicas.size(), 1u);
    EXPECT_LE(round.replicas.size(), 2u);
    std::set<int> distinct(round.replicas.begin(), round.replicas.end());
    EXPECT_EQ(distinct.size(), round.replicas.size());
    for (const int r : round.replicas) {
      EXPECT_GE(r, 0);
      EXPECT_LT(r, 5);
    }
    // Rounds are ordered and never overlap (the <= f concurrency bound).
    EXPECT_GT(round.at_ms, prev_end);
    prev_end = round.at_ms + round.down_ms;
    EXPECT_LT(prev_end, 10'000);
  }
}

TEST(CrashScheduleTest, DegenerateInputsYieldEmptySchedules) {
  EXPECT_TRUE(node::CrashSchedule::generate(1, 0, 1, 1000, 100, 50).rounds.empty());
  EXPECT_TRUE(node::CrashSchedule::generate(1, 3, 0, 1000, 100, 50).rounds.empty());
  EXPECT_TRUE(node::CrashSchedule::generate(1, 3, 1, 100, 200, 50).rounds.empty());
}

}  // namespace
}  // namespace twostep
