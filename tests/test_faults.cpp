// Tests for the faults subsystem: FaultPlan rules and determinism, the
// network's fault-injection stage and DropReason tracing, crash-restart
// schedules through the Cluster, and end-to-end protocol safety under
// chaos (the acceptance configuration: 20% drop + duplication + a healed
// partition, with the ReliableChannel restoring reliable links).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "consensus/scenario.hpp"
#include "core/messages.hpp"
#include "core/two_step.hpp"
#include "faults/fault_plan.hpp"
#include "modelcheck/explorer.hpp"
#include "net/latency.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "support.hpp"
#include "util/rng.hpp"

namespace twostep {
namespace {

using consensus::ProcessId;
using consensus::SystemConfig;
using consensus::Value;
using faults::DropReason;
using faults::FaultPlan;

// ---- FaultPlan rules ----

TEST(FaultPlan, RejectsBadRates) {
  FaultPlan plan;
  EXPECT_THROW(plan.drop(1.5), std::invalid_argument);
  EXPECT_THROW(plan.drop(-0.1), std::invalid_argument);
  EXPECT_THROW(plan.duplicate(0.5, 0), std::invalid_argument);
  EXPECT_THROW(plan.reorder(0.5, 0), std::invalid_argument);
  EXPECT_THROW(plan.drop_if(nullptr), std::invalid_argument);
  EXPECT_THROW(plan.partition_cut({}, 0, 100), std::invalid_argument);
}

TEST(FaultPlan, SameSeedSameDecisionSequence) {
  const auto decide_sequence = [](std::uint64_t seed) {
    FaultPlan plan{seed};
    plan.drop(0.3).duplicate(0.2, 2).reorder(0.25, 40);
    std::ostringstream log;
    for (int i = 0; i < 200; ++i) {
      const auto d = plan.on_send(i, i % 3, (i + 1) % 3, nullptr);
      log << static_cast<int>(d.drop) << ':' << d.copies << ':' << d.extra_delay << ';';
    }
    return log.str();
  };
  EXPECT_EQ(decide_sequence(7), decide_sequence(7));
  EXPECT_NE(decide_sequence(7), decide_sequence(8));
}

TEST(FaultPlan, ProbabilisticDropRoughlyMatchesRate) {
  FaultPlan plan{11};
  plan.drop(0.2);
  int dropped = 0;
  for (int i = 0; i < 10000; ++i)
    if (plan.on_send(i, 0, 1, nullptr).dropped()) ++dropped;
  EXPECT_GT(dropped, 1600);
  EXPECT_LT(dropped, 2400);
  EXPECT_EQ(plan.injected_drops(), static_cast<std::uint64_t>(dropped));
}

TEST(FaultPlan, LinkPartitionSeversBothDirectionsUntilHeal) {
  FaultPlan plan;
  plan.partition_link(0, 1, 100, 200);
  EXPECT_FALSE(plan.partitioned(99, 0, 1));
  EXPECT_TRUE(plan.partitioned(100, 0, 1));
  EXPECT_TRUE(plan.partitioned(150, 1, 0));
  EXPECT_FALSE(plan.partitioned(200, 0, 1));  // healed
  EXPECT_FALSE(plan.partitioned(150, 0, 2));  // other links unaffected
  EXPECT_EQ(plan.on_send(150, 0, 1, nullptr).drop, DropReason::kPartition);
}

TEST(FaultPlan, UnhealedPartitionNeverHeals) {
  FaultPlan plan;
  plan.partition_link(0, 1, 0, -1);
  EXPECT_TRUE(plan.partitioned(1'000'000, 0, 1));
}

TEST(FaultPlan, CutPartitionSeversCrossTrafficOnly) {
  FaultPlan plan;
  plan.partition_cut({0, 1}, 0, -1);
  EXPECT_TRUE(plan.partitioned(0, 0, 2));
  EXPECT_TRUE(plan.partitioned(0, 3, 1));
  EXPECT_FALSE(plan.partitioned(0, 0, 1));  // inside the island
  EXPECT_FALSE(plan.partitioned(0, 2, 3));  // inside the complement
}

TEST(FaultPlan, PredicateRulesAreDeterministic) {
  FaultPlan plan;
  plan.drop_if([](sim::Tick, ProcessId from, ProcessId) { return from == 2; });
  plan.duplicate_if([](sim::Tick now, ProcessId, ProcessId) { return now >= 50; }, 2);
  EXPECT_EQ(plan.on_send(0, 2, 0, nullptr).drop, DropReason::kInjected);
  EXPECT_EQ(plan.on_send(0, 1, 0, nullptr).copies, 1);
  EXPECT_EQ(plan.on_send(60, 1, 0, nullptr).copies, 3);
  EXPECT_EQ(plan.injected_drops(), 1u);
  EXPECT_EQ(plan.injected_duplicates(), 2u);
}

TEST(FaultPlan, CrashScheduleIsRecorded) {
  FaultPlan plan;
  plan.crash_at(100, 2).restart_at(300, 2);
  ASSERT_EQ(plan.crash_schedule().size(), 2u);
  EXPECT_EQ(plan.crash_schedule()[0].when, 100);
  EXPECT_FALSE(plan.crash_schedule()[0].restart);
  EXPECT_EQ(plan.crash_schedule()[1].when, 300);
  EXPECT_TRUE(plan.crash_schedule()[1].restart);
}

TEST(FaultPlan, TypedDelayRuleIgnoresControlSignals) {
  FaultPlan plan;
  plan.delay_rule(faults::typed_delay_rule<std::string>(
      [](sim::Tick, ProcessId, ProcessId, const std::string&) -> std::optional<sim::Tick> {
        return 777;
      }));
  const std::string payload = "m";
  EXPECT_EQ(plan.on_send(0, 0, 1, &payload).forced_time, 777);
  // Null payload = control signal (reliable-channel ack): defer to the model.
  EXPECT_FALSE(plan.on_send(0, 0, 1, nullptr).forced_time.has_value());
}

TEST(FaultPlan, DropReasonNamesAreStable) {
  EXPECT_STREQ(faults::drop_reason_name(DropReason::kNone), "none");
  EXPECT_STREQ(faults::drop_reason_name(DropReason::kCrashed), "crashed");
  EXPECT_STREQ(faults::drop_reason_name(DropReason::kInjected), "injected");
  EXPECT_STREQ(faults::drop_reason_name(DropReason::kPartition), "partition");
}

// ---- the network's fault stage ----

using Net = net::Network<std::string>;

net::NetworkConfig chaos_config(std::shared_ptr<FaultPlan> plan, bool trace = true) {
  net::NetworkConfig config;
  config.faults = std::move(plan);
  config.trace = trace;
  return config;
}

TEST(NetworkFaults, InjectedDropIsTracedWithReason) {
  sim::Simulator sim;
  auto plan = std::make_shared<FaultPlan>();
  plan->drop_if([](sim::Tick, ProcessId, ProcessId) { return true; });
  Net net{sim, std::make_unique<net::FixedDelay>(10), 2, 1, chaos_config(plan)};
  int got = 0;
  net.set_handler(1, [&](ProcessId, const std::string&) { ++got; });
  net.send(0, 1, "doomed");
  sim.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(net.messages_delivered(), 0u);
  ASSERT_EQ(net.trace().size(), 1u);
  EXPECT_EQ(net.trace().front().drop, DropReason::kInjected);
  EXPECT_EQ(net.trace().front().deliver_time, -1);
}

TEST(NetworkFaults, PartitionDropUsesPartitionReason) {
  sim::Simulator sim;
  auto plan = std::make_shared<FaultPlan>();
  plan->partition_link(0, 1, 0, -1);
  Net net{sim, std::make_unique<net::FixedDelay>(10), 3, 1, chaos_config(plan)};
  net.set_handler(1, [](ProcessId, const std::string&) {});
  net.set_handler(2, [](ProcessId, const std::string&) {});
  net.send(0, 1, "cut");
  net.send(0, 2, "fine");
  sim.run();
  ASSERT_EQ(net.trace().size(), 2u);
  EXPECT_EQ(net.trace()[0].drop, DropReason::kPartition);
  EXPECT_EQ(net.trace()[1].drop, DropReason::kNone);
  EXPECT_EQ(net.messages_delivered(), 1u);
}

TEST(NetworkFaults, DuplicationDeliversEveryCopy) {
  sim::Simulator sim;
  auto plan = std::make_shared<FaultPlan>();
  plan->duplicate_if([](sim::Tick, ProcessId, ProcessId) { return true; }, 2);
  Net net{sim, std::make_unique<net::FixedDelay>(10), 2, 1, chaos_config(plan)};
  int got = 0;
  net.set_handler(1, [&](ProcessId, const std::string&) { ++got; });
  net.send(0, 1, "echo");
  sim.run();
  EXPECT_EQ(got, 3);  // original + 2 extra copies
  EXPECT_EQ(net.messages_delivered(), 3u);
  EXPECT_EQ(net.messages_sent(), 1u);  // one logical send
}

TEST(NetworkFaults, ProbeCountsInjectedFaults) {
  sim::Simulator sim;
  obs::MetricsRegistry metrics;
  auto plan = std::make_shared<FaultPlan>();
  plan->drop_if([](sim::Tick, ProcessId from, ProcessId) { return from == 0; });
  plan->duplicate_if([](sim::Tick, ProcessId from, ProcessId) { return from == 1; });
  net::NetworkConfig config = chaos_config(plan, /*trace=*/false);
  config.probe = obs::Probe{nullptr, &metrics};
  Net net{sim, std::make_unique<net::FixedDelay>(10), 2, 1, config};
  net.set_handler(0, [](ProcessId, const std::string&) {});
  net.set_handler(1, [](ProcessId, const std::string&) {});
  net.send(0, 1, "dropped");
  net.send(1, 0, "duplicated");
  sim.run();
  EXPECT_EQ(metrics.counter_value("faults.drops"), 1u);
  EXPECT_EQ(metrics.counter_value("faults.duplicates"), 1u);
  EXPECT_EQ(metrics.counter_value("net.dropped.msg"), 1u);
}

TEST(NetworkFaults, RestartAcceptsTrafficAgain) {
  sim::Simulator sim;
  Net net{sim, std::make_unique<net::FixedDelay>(10), 2};
  int got = 0;
  net.set_handler(1, [&](ProcessId, const std::string&) { ++got; });
  net.crash(1);
  net.send(0, 1, "lost");
  sim.run();
  EXPECT_EQ(got, 0);
  net.restart(1);
  net.send(0, 1, "received");
  sim.run();
  EXPECT_EQ(got, 1);
  EXPECT_FALSE(net.crashed(1));
}

// ---- chaos determinism: byte-identical runs for a fixed seed ----

std::string trace_fingerprint(const std::vector<net::TraceEntry<core::Message>>& trace) {
  std::ostringstream os;
  for (const auto& e : trace)
    os << e.send_time << '/' << e.deliver_time << '/' << e.from << '/' << e.to << '/'
       << static_cast<int>(e.drop) << '/' << core::to_string(e.payload) << '\n';
  return os.str();
}

std::string chaos_run_fingerprint(std::uint64_t seed) {
  const SystemConfig cfg{5, 2, 2};
  auto plan = std::make_shared<FaultPlan>(seed);
  plan->drop(0.2).duplicate(0.1).reorder(0.15, 120).partition_cut({0, 1}, 150, 500);
  auto r = testing::RunSpec(cfg)
               .delta(100)
               .seed(seed)
               .fault_plan(plan)
               .reliable()
               .trace()
               .core(core::Mode::kObject);
  r->cluster().start_all();
  for (ProcessId p = 0; p < cfg.n; ++p) r->cluster().propose(p, Value{100 + p});
  r->cluster().run();
  EXPECT_TRUE(r->monitor().safe());
  return trace_fingerprint(r->cluster().network().trace());
}

TEST(ChaosDeterminism, SameSeedByteIdenticalNetworkTrace) {
  const std::string first = chaos_run_fingerprint(42);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, chaos_run_fingerprint(42));
  EXPECT_NE(first, chaos_run_fingerprint(43));
}

// ---- crash-restart schedules through the Cluster ----

TEST(ChaosCluster, FaultPlanCrashRestartScheduleApplies) {
  const SystemConfig cfg{3, 1, 1};
  obs::RunTracer tracer;
  auto plan = std::make_shared<FaultPlan>();
  plan->crash_at(150, 2).restart_at(450, 2);
  auto r = testing::RunSpec(cfg)
               .delta(100)
               .probe(obs::Probe{&tracer, nullptr})
               .fault_plan(plan)
               .core(core::Mode::kTask);
  r->cluster().start_all();
  for (ProcessId p = 0; p < cfg.n; ++p) r->cluster().propose(p, Value{100 + p});
  r->cluster().run_until(200);
  EXPECT_TRUE(r->cluster().crashed(2));
  r->cluster().run();
  EXPECT_FALSE(r->cluster().crashed(2));
  EXPECT_TRUE(r->monitor().safe());

  bool saw_crash = false, saw_restart = false;
  for (const auto& e : tracer.events()) {
    saw_crash |= e.kind == obs::EventKind::kCrash && e.process == 2;
    saw_restart |= e.kind == obs::EventKind::kRestart && e.process == 2;
  }
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_restart);
}

// ---- acceptance: every protocol is safe and live under chaos ----

std::shared_ptr<FaultPlan> acceptance_plan(std::uint64_t seed) {
  auto plan = std::make_shared<FaultPlan>(seed);
  plan->drop(0.2).duplicate(0.1).partition_cut({0, 1}, 150, 500);
  return plan;
}

template <typename Runner>
void expect_safe_and_live(Runner& r, int n, const char* what, std::uint64_t seed) {
  r.cluster().start_all();
  for (ProcessId p = 0; p < n; ++p) r.cluster().propose(p, Value{100 + p});
  r.cluster().run(2'000'000);
  EXPECT_TRUE(r.monitor().safe()) << what << " seed=" << seed << ": "
                                  << r.monitor().violations().front();
  for (ProcessId p = 0; p < n; ++p)
    EXPECT_TRUE(r.monitor().has_decided(p)) << what << " seed=" << seed << " p" << p;
}

TEST(ChaosSafety, CoreTaskSafeAndLiveUnderChaos) {
  const SystemConfig cfg{6, 2, 2};  // min_processes_task(e=2, f=2)
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto r = testing::RunSpec(cfg).delta(100).seed(seed).fault_plan(acceptance_plan(seed))
                 .reliable().core(core::Mode::kTask);
    expect_safe_and_live(*r, cfg.n, "core/task", seed);
  }
}

TEST(ChaosSafety, CoreObjectSafeAndLiveUnderChaos) {
  const SystemConfig cfg{5, 2, 2};
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto r = testing::RunSpec(cfg).delta(100).seed(seed).fault_plan(acceptance_plan(seed))
                 .reliable().core(core::Mode::kObject);
    expect_safe_and_live(*r, cfg.n, "core/object", seed);
  }
}

TEST(ChaosSafety, PaxosSafeAndLiveUnderChaos) {
  const SystemConfig cfg{5, 2, 0};
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto r = testing::RunSpec(cfg).delta(100).seed(seed).fault_plan(acceptance_plan(seed))
                 .reliable().paxos();
    expect_safe_and_live(*r, cfg.n, "paxos", seed);
  }
}

TEST(ChaosSafety, FastPaxosSafeAndLiveUnderChaos) {
  const SystemConfig cfg{7, 2, 2};
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto r = testing::RunSpec(cfg).delta(100).seed(seed).fault_plan(acceptance_plan(seed))
                 .reliable().fastpaxos();
    expect_safe_and_live(*r, cfg.n, "fastpaxos", seed);
  }
}

// Without the reliable channel safety must still hold (the protocols may
// simply not terminate); run with a bounded horizon and check the monitor.
TEST(ChaosSafety, RawLossyLinksNeverViolateSafety) {
  const SystemConfig cfg{5, 2, 2};
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto plan = acceptance_plan(seed);
    auto r = testing::RunSpec(cfg).delta(100).seed(seed).fault_plan(plan).core(
        core::Mode::kObject);
    r->cluster().start_all();
    for (ProcessId p = 0; p < cfg.n; ++p) r->cluster().propose(p, Value{100 + p});
    r->cluster().run(500'000);
    EXPECT_TRUE(r->monitor().safe()) << "seed=" << seed;
  }
}

// ---- fuzzing with fault budgets: jobs-independent and replayable ----
// (Suite name intentionally matches the CI TSan exclusion regex — the
// jobs=8 case is genuinely multi-threaded.)

modelcheck::Scenario<core::TwoStepProcess> chaos_fuzz_scenario() {
  const SystemConfig cfg{3, 1, 1};
  modelcheck::Scenario<core::TwoStepProcess> s;
  s.config = cfg;
  s.factory = [cfg](consensus::Env<core::Message>& env, ProcessId) {
    core::Options o;
    o.mode = core::Mode::kTask;
    o.delta = 100;
    o.leader_of = [] { return ProcessId{0}; };
    return std::make_unique<core::TwoStepProcess>(env, cfg, o);
  };
  s.setup = [](modelcheck::DirectDrive<core::TwoStepProcess>& d) {
    d.start_all();
    d.propose(0, Value{1});
    d.propose(1, Value{2});
    d.propose(2, Value{3});
  };
  s.faults.drops = 2;
  s.faults.duplicates = 1;
  s.faults.partitions = 1;
  s.max_depth = 40;
  return s;
}

TEST(ExplorerChaosFuzz, FaultBudgetsFindNoViolationAtTheBound) {
  const auto result =
      modelcheck::Explorer<core::TwoStepProcess>::fuzz(chaos_fuzz_scenario(), 2000, 99, 250);
  EXPECT_FALSE(result.violation) << result.what;
  EXPECT_EQ(result.traces, 2000);
}

TEST(ExplorerChaosFuzz, ResultIsIdenticalForAnyJobCount) {
  const auto fingerprint = [](int jobs) {
    const auto r = modelcheck::Explorer<core::TwoStepProcess>::fuzz(chaos_fuzz_scenario(),
                                                                    1000, 7, 250, jobs);
    std::ostringstream os;
    os << r.traces << '|' << r.steps << '|' << r.violation << '|' << r.what << '|';
    for (int a : r.schedule) os << a << ',';
    return os.str();
  };
  const std::string serial = fingerprint(1);
  EXPECT_EQ(serial, fingerprint(4));
  EXPECT_EQ(serial, fingerprint(8));
}

// ---- the RunSpec builder covers the old canned-factory defaults ----

TEST(RunSpecBuilder, DefaultCoreRunSucceeds) {
  const SystemConfig cfg{3, 1, 1};
  auto r = harness::RunSpec(cfg).delta(100).core(core::Mode::kTask);
  consensus::SyncScenario s;
  for (int p = 0; p < cfg.n; ++p) s.proposals.push_back({p, Value{100 + p}});
  r->run(s);
  EXPECT_TRUE(r->monitor().safe());
  EXPECT_TRUE(r->monitor().undecided_correct(cfg.n).empty());
}

}  // namespace
}  // namespace twostep
