// The Definition 4 / A.1 obligation matrices (experiments T2/T3 in test
// form): the paper's protocol meets every two-step obligation at its tight
// bound, Fast Paxos meets them at Lamport's bound, and Paxos fails them for
// any e > 0.
#include <gtest/gtest.h>

#include "support.hpp"

namespace twostep {
namespace {

using consensus::EvalVerdict;
using consensus::SystemConfig;
using consensus::TwoStepEvaluator;
using core::Mode;

constexpr sim::Tick kDelta = 100;

template <typename V>
void expect_all_satisfied(const V& verdict) {
  EXPECT_TRUE(verdict.ok()) << verdict.failures.front();
  EXPECT_EQ(verdict.satisfied, verdict.runs);
  EXPECT_GT(verdict.runs, 0);
}

struct BoundCase {
  int e;
  int f;
};

class TaskMatrix : public ::testing::TestWithParam<BoundCase> {};

TEST_P(TaskMatrix, MeetsDefinition4AtTheorem5Bound) {
  const auto [e, f] = GetParam();
  const SystemConfig cfg{SystemConfig::min_processes_task(e, f), f, e};
  TwoStepEvaluator<core::TwoStepProcess, core::Options> eval{
      cfg, [&] { return testing::RunSpec(cfg).delta(kDelta).core(Mode::kTask); }};
  expect_all_satisfied(eval.check_task_item1());
  expect_all_satisfied(eval.check_task_item2());
}

TEST_P(TaskMatrix, AlsoMeetsItAboveTheBound) {
  const auto [e, f] = GetParam();
  const SystemConfig cfg{SystemConfig::min_processes_task(e, f) + 1, f, e};
  TwoStepEvaluator<core::TwoStepProcess, core::Options> eval{
      cfg, [&] { return testing::RunSpec(cfg).delta(kDelta).core(Mode::kTask); }};
  expect_all_satisfied(eval.check_task_item1());
  expect_all_satisfied(eval.check_task_item2());
}

INSTANTIATE_TEST_SUITE_P(Bounds, TaskMatrix,
                         ::testing::Values(BoundCase{1, 1}, BoundCase{1, 2}, BoundCase{2, 2}),
                         [](const ::testing::TestParamInfo<BoundCase>& info) {
                           return "e" + std::to_string(info.param.e) + "f" +
                                  std::to_string(info.param.f);
                         });

class ObjectMatrix : public ::testing::TestWithParam<BoundCase> {};

TEST_P(ObjectMatrix, MeetsDefinitionA1AtTheorem6Bound) {
  const auto [e, f] = GetParam();
  const SystemConfig cfg{SystemConfig::min_processes_object(e, f), f, e};
  TwoStepEvaluator<core::TwoStepProcess, core::Options> eval{
      cfg, [&] { return testing::RunSpec(cfg).delta(kDelta).core(Mode::kObject); }};
  expect_all_satisfied(eval.check_object_item1());
  expect_all_satisfied(eval.check_object_item2());
}

INSTANTIATE_TEST_SUITE_P(Bounds, ObjectMatrix,
                         ::testing::Values(BoundCase{1, 1}, BoundCase{1, 2}, BoundCase{2, 2},
                                           BoundCase{2, 3}),
                         [](const ::testing::TestParamInfo<BoundCase>& info) {
                           return "e" + std::to_string(info.param.e) + "f" +
                                  std::to_string(info.param.f);
                         });

TEST(ObjectMatrix, ObjectBoundIsBelowTaskBoundAtE2F2) {
  // The separation the paper proves: at e=2, f=2 the object protocol runs
  // with n=5 where the task needs n=6.
  EXPECT_EQ(SystemConfig::min_processes_object(2, 2), 5);
  EXPECT_EQ(SystemConfig::min_processes_task(2, 2), 6);
}

TEST(FastPaxosMatrix, MeetsDefinition4AtLamportBound) {
  const int e = 1;
  const int f = 1;
  const SystemConfig cfg{SystemConfig::min_processes_fast_paxos(e, f), f, e};
  TwoStepEvaluator<fastpaxos::FastPaxosProcess, fastpaxos::Options> eval{
      cfg, [&] { return testing::RunSpec(cfg).delta(kDelta).fastpaxos(); }};
  expect_all_satisfied(eval.check_task_item1());
  expect_all_satisfied(eval.check_task_item2());
}

TEST(PaxosMatrix, IsZeroTwoStep) {
  const SystemConfig cfg{3, 1, 0};
  TwoStepEvaluator<paxos::PaxosProcess, paxos::Options> eval{
      cfg, [&] { return testing::RunSpec(cfg).delta(kDelta).paxos(); }};
  expect_all_satisfied(eval.check_task_item1());
  expect_all_satisfied(eval.check_task_item2());
}

TEST(PaxosMatrix, FailsForAnyPositiveE) {
  // Crashing the initial leader destroys the only 2Δ path Paxos has; the
  // obligation "some process two-step for every crash set" fails.
  const SystemConfig cfg{4, 1, 1};  // even one extra process does not help
  TwoStepEvaluator<paxos::PaxosProcess, paxos::Options> eval{
      cfg, [&] { return testing::RunSpec(cfg).delta(kDelta).paxos(); }};
  const EvalVerdict verdict = eval.check_task_item1();
  EXPECT_FALSE(verdict.ok());
  // Exactly the crash sets containing p0 fail: E={0} over canonical configs.
  EXPECT_GT(verdict.satisfied, 0);
  for (const auto& failure : verdict.failures)
    EXPECT_NE(failure.find("E={0}"), std::string::npos) << failure;
}

}  // namespace
}  // namespace twostep
