// Tests for the live flight recorder: span-id salting, ring eviction, the
// JSONL export/parse round trip (including malformed-input rejection), and
// the multi-process Chrome-trace merge `twostep tracemerge` performs.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight.hpp"

namespace twostep::obs {
namespace {

SpanRecord span(std::uint64_t trace, std::uint64_t id, std::uint64_t parent, const char* name,
                std::int64_t start, std::int64_t dur, std::int64_t detail = 0) {
  return SpanRecord{trace, id, parent, name, start, dur, detail};
}

// ---- FlightRecorder ----

TEST(FlightRecorder, SpanIdsCarryTheSaltAndNeverRepeat) {
  FlightRecorder a("node-0", 1), b("node-1", 2);
  const std::uint64_t a1 = a.next_span_id();
  const std::uint64_t a2 = a.next_span_id();
  const std::uint64_t b1 = b.next_span_id();
  EXPECT_NE(a1, a2);
  EXPECT_EQ(a1 >> 40, 1u);  // salt in the high bits...
  EXPECT_EQ(b1 >> 40, 2u);
  EXPECT_NE(a1 & ((std::uint64_t{1} << 40) - 1), 0u);  // ...counter never zero
  EXPECT_NE(a1, b1);  // different salts can never mint the same id
}

TEST(FlightRecorder, RingEvictsOldestBeyondCapacity) {
  FlightRecorder rec("p", 1, 4);
  for (std::int64_t i = 0; i < 10; ++i)
    rec.record(span(1, static_cast<std::uint64_t>(i + 1), 0, "s", i, 1));
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  const auto spans = rec.spans();
  ASSERT_EQ(spans.size(), 4u);
  // The newest four, still in recording order.
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(spans[i].start_us, static_cast<std::int64_t>(6 + i));
}

TEST(FlightRecorder, ClearEmptiesAndStaysUsable) {
  FlightRecorder rec("p", 1, 8);
  rec.record(span(1, 1, 0, "s", 0, 1));
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  rec.record(span(1, 2, 0, "s", 5, 1));
  ASSERT_EQ(rec.spans().size(), 1u);
  EXPECT_EQ(rec.spans()[0].span_id, 2u);
}

TEST(FlightRecorder, NowUsIsMonotonic) {
  const std::int64_t t1 = FlightRecorder::now_us();
  const std::int64_t t2 = FlightRecorder::now_us();
  EXPECT_GE(t2, t1);
  EXPECT_GT(t1, 0);
}

TEST(FlightRecorderLive, ConcurrentRecordersKeepEveryCount) {
  // The recorder is shared between a runtime's loop thread and whatever
  // thread exports it; record() must be safe under TSan from any thread.
  FlightRecorder rec("p", 1);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&rec] {
      for (int i = 0; i < kPerThread; ++i) {
        rec.record({1, rec.next_span_id(), 0, "s", FlightRecorder::now_us(), 1, 0});
        (void)rec.size();
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(rec.size() + rec.dropped(), static_cast<std::uint64_t>(kThreads * kPerThread));
}

// ---- JSONL round trip ----

TEST(FlightJsonl, WriteParseRoundTripPreservesEveryField) {
  FlightRecorder rec("node-3", 9);
  // High-bit ids: they must survive as decimal strings, not doubles.
  const std::uint64_t big = (std::uint64_t{0x7FFFFF} << 40) | 12345;
  rec.record(span(big, big - 1, big - 2, "serve", 1'000'000, 250, 42));
  rec.record(span(7, 8, 0, "wal.fsync", 2'000'000, 75, -3));

  std::ostringstream os;
  write_spans_jsonl(rec, os);
  std::istringstream is(os.str());
  std::vector<MergedSpan> parsed;
  std::string error;
  ASSERT_TRUE(parse_spans_jsonl(is, parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0],
            (MergedSpan{"node-3", big, big - 1, big - 2, "serve", 1'000'000, 250, 42}));
  EXPECT_EQ(parsed[1], (MergedSpan{"node-3", 7, 8, 0, "wal.fsync", 2'000'000, 75, -3}));
}

TEST(FlightJsonl, BlankLinesAndConcatenatedFilesParse) {
  FlightRecorder a("client", 1), b("node-0", 2);
  a.record(span(1, 1, 0, "client.call", 0, 100));
  b.record(span(1, 2, 1, "serve", 10, 50));
  std::ostringstream os;
  write_spans_jsonl(a, os);
  os << "\n   \n";  // blank/whitespace lines between files are skipped
  write_spans_jsonl(b, os);
  std::istringstream is(os.str());
  std::vector<MergedSpan> parsed;
  ASSERT_TRUE(parse_spans_jsonl(is, parsed, nullptr));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].process, "client");
  EXPECT_EQ(parsed[1].process, "node-0");
}

TEST(FlightJsonl, MalformedLinesAreRejectedWithALineNumber) {
  const std::vector<std::string> bad = {
      "not json at all",
      "{\"process\": \"p\"",                          // truncated object
      "{\"process\": \"p\", \"bogus_key\": 1}",       // unknown key
      "{\"process\": \"p\", \"trace\": 17}",          // id as a bare number
      "{\"process\": \"p\", \"start_us\": \"x\"}",    // non-numeric int field
      "{\"process\": \"p\",, \"trace\": \"1\"}",      // stray comma
      "{\"process\": \"p\"} trailing",                // trailing garbage
  };
  for (const std::string& line : bad) {
    std::istringstream is(line);
    std::vector<MergedSpan> parsed;
    std::string error;
    EXPECT_FALSE(parse_spans_jsonl(is, parsed, &error)) << line;
    EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  }
}

TEST(FlightJsonl, ErrorNamesTheOffendingLine) {
  std::istringstream is(
      "{\"process\": \"p\", \"trace\": \"1\", \"span\": \"2\", \"parent\": \"0\", "
      "\"name\": \"s\", \"start_us\": 1, \"dur_us\": 2, \"detail\": 0}\n"
      "garbage\n");
  std::vector<MergedSpan> parsed;
  std::string error;
  EXPECT_FALSE(parse_spans_jsonl(is, parsed, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

// ---- Chrome-trace merge ----

TEST(FlightChromeMerge, CrossProcessParentEdgesBecomeFlowArrows) {
  // client.call on "client" parents serve on "node-0", which parents a
  // wal.fsync on the same node (same-process edge: no arrow) and a 2B on
  // "node-1" (cross-process: arrow).
  const std::vector<MergedSpan> spans = {
      {"client", 5, 100, 0, "client.call", 1'000, 400, 1},
      {"node-0", 5, 200, 100, "serve", 1'100, 200, 1},
      {"node-0", 5, 201, 200, "wal.fsync", 1'150, 50, 0},
      {"node-1", 5, 300, 200, "2B", 1'250, 60, 1},
  };
  std::ostringstream os;
  write_chrome_spans(spans, os);
  const std::string json = os.str();

  // One pid per process, named.
  EXPECT_NE(json.find("\"name\": \"client\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\": \"node-0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"node-1\""), std::string::npos);
  // All four spans as complete events, timestamps shifted so t0 = 0.
  EXPECT_NE(json.find("\"ph\": \"X\", \"pid\": 1, \"tid\": 1, \"ts\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"wal.fsync\""), std::string::npos);
  // Exactly two flow arrows (client->serve and serve->2B; fsync is local).
  std::size_t starts = 0, finishes = 0;
  for (std::size_t at = json.find("\"ph\": \"s\""); at != std::string::npos;
       at = json.find("\"ph\": \"s\"", at + 1))
    ++starts;
  for (std::size_t at = json.find("\"ph\": \"f\""); at != std::string::npos;
       at = json.find("\"ph\": \"f\"", at + 1))
    ++finishes;
  EXPECT_EQ(starts, 2u);
  EXPECT_EQ(finishes, 2u);
  // Ids ride along as strings for the span tree.
  EXPECT_NE(json.find("\"span\": \"200\""), std::string::npos);
  EXPECT_NE(json.find("\"parent\": \"100\""), std::string::npos);
}

TEST(FlightChromeMerge, EmptyInputIsStillAValidDocument) {
  std::ostringstream os;
  write_chrome_spans({}, os);
  EXPECT_NE(os.str().find("\"traceEvents\""), std::string::npos);
}

TEST(FlightChromeMerge, JsonlToChromePipelineMatchesDirectMerge) {
  // The exact pipeline the CLI runs: record on two recorders, dump JSONL,
  // parse both files, merge.  The merged output must contain spans from
  // both processes regardless of file order.
  FlightRecorder client("client", 100), node("node-0", 1);
  const std::uint64_t root = client.next_span_id();
  client.record({77, root, 0, "client.call", 500, 300, 1});
  node.record({77, node.next_span_id(), root, "serve", 600, 100, 1});

  std::ostringstream f1, f2;
  write_spans_jsonl(client, f1);
  write_spans_jsonl(node, f2);
  std::vector<MergedSpan> merged;
  std::istringstream i2(f2.str()), i1(f1.str());
  ASSERT_TRUE(parse_spans_jsonl(i2, merged, nullptr));  // node file first
  ASSERT_TRUE(parse_spans_jsonl(i1, merged, nullptr));
  ASSERT_EQ(merged.size(), 2u);

  std::ostringstream os;
  write_chrome_spans(merged, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("client.call"), std::string::npos);
  EXPECT_NE(json.find("serve"), std::string::npos);
  // The cross-process parent edge survived the files round trip.
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos) << json;
}

}  // namespace
}  // namespace twostep::obs
