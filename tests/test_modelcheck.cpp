// Tests for DirectDrive and the bounded model checker / schedule fuzzer:
// exhaustive exploration of tiny configurations finds no safety violation
// for the paper's protocol at its bounds, and deliberately weakened
// selection rules (the A1 ablation mutants) are caught.
#include <gtest/gtest.h>

#include <memory>

#include "core/two_step.hpp"
#include "modelcheck/direct_drive.hpp"
#include "modelcheck/explorer.hpp"

namespace twostep::modelcheck {
namespace {

using consensus::ProcessId;
using consensus::SystemConfig;
using consensus::Value;
using core::Message;
using core::Mode;
using core::SelectionPolicy;
using core::TwoStepProcess;

DirectDrive<TwoStepProcess>::Factory factory(SystemConfig cfg, Mode mode,
                                             SelectionPolicy policy = SelectionPolicy::kPaper,
                                             ProcessId leader = 0) {
  return [cfg, mode, policy, leader](consensus::Env<Message>& env, ProcessId) {
    core::Options o;
    o.mode = mode;
    o.delta = 100;
    o.selection_policy = policy;
    o.leader_of = [leader] { return leader; };
    return std::make_unique<TwoStepProcess>(env, cfg, o);
  };
}

// ---------- DirectDrive mechanics ----------

TEST(DirectDrive, CollectsSendsIntoPool) {
  const SystemConfig cfg{3, 1, 1};
  DirectDrive<TwoStepProcess> d{cfg, factory(cfg, Mode::kTask)};
  d.propose(0, Value{5});
  EXPECT_EQ(d.pool().size(), 2u);  // Propose to p1, p2
}

TEST(DirectDrive, DeliverIndexInvokesHandler) {
  const SystemConfig cfg{3, 1, 1};
  DirectDrive<TwoStepProcess> d{cfg, factory(cfg, Mode::kTask)};
  d.propose(0, Value{5});
  d.deliver_index(0);  // Propose(5) -> p1
  EXPECT_EQ(d.process(1).vote_value(), Value{5});
  EXPECT_EQ(d.pool().size(), 2u);  // p1's 2B to p0 replaced the consumed msg
}

TEST(DirectDrive, CrashedReceiverConsumesSilently) {
  const SystemConfig cfg{3, 1, 1};
  DirectDrive<TwoStepProcess> d{cfg, factory(cfg, Mode::kTask)};
  d.propose(0, Value{5});
  d.crash(1);
  d.deliver_all();
  EXPECT_TRUE(d.process(1).vote_value().is_bottom());
}

TEST(DirectDrive, CrashSuppressingOutboxDropsPending) {
  const SystemConfig cfg{3, 1, 1};
  DirectDrive<TwoStepProcess> d{cfg, factory(cfg, Mode::kTask)};
  d.propose(0, Value{5});
  ASSERT_EQ(d.pool().size(), 2u);
  d.crash_suppressing_outbox(0);
  EXPECT_TRUE(d.pool().empty());
}

TEST(DirectDrive, TimersFireManuallyInFifoOrder) {
  const SystemConfig cfg{3, 1, 1};
  DirectDrive<TwoStepProcess> d{cfg, factory(cfg, Mode::kTask)};
  d.start_all();
  EXPECT_EQ(d.armed_timers(0), 1);
  EXPECT_TRUE(d.fire_next_timer(0));  // leader starts a ballot (re-arms)
  EXPECT_EQ(d.armed_timers(0), 1);
  EXPECT_FALSE(d.fire_next_timer(1) && false);  // p1 is not the leader; timer fires, no 1A
}

TEST(DirectDrive, DeliverWhereRespectsLimitAndPredicate) {
  const SystemConfig cfg{4, 1, 1};
  DirectDrive<TwoStepProcess> d{cfg, factory(cfg, Mode::kTask)};
  d.propose(0, Value{5});
  d.propose(1, Value{6});
  const int delivered = d.deliver_where(
      [](const auto& m) { return m.from == 0; }, 2);
  EXPECT_EQ(delivered, 2);
}

TEST(DirectDrive, FullDeliveryDecidesAndStaysSafe) {
  const SystemConfig cfg{3, 1, 1};
  DirectDrive<TwoStepProcess> d{cfg, factory(cfg, Mode::kTask)};
  d.start_all();
  d.propose(0, Value{1});
  d.propose(1, Value{2});
  d.propose(2, Value{3});
  d.deliver_all();
  EXPECT_TRUE(d.monitor().safe());
  EXPECT_GE(d.monitor().decided_count(), 1);
}

// ---------- exhaustive exploration ----------

Scenario<TwoStepProcess> tiny_task_scenario(SelectionPolicy policy, int crash_budget,
                                            int max_depth) {
  const SystemConfig cfg{3, 1, 1};  // the task bound for e=1, f=1
  Scenario<TwoStepProcess> s;
  s.config = cfg;
  s.factory = factory(cfg, Mode::kTask, policy);
  s.setup = [](DirectDrive<TwoStepProcess>& d) {
    d.start_all();
    d.propose(0, Value{1});
    d.propose(1, Value{2});
    d.propose(2, Value{3});
  };
  s.may_crash = {0, 1, 2};
  s.crash_budget = crash_budget;
  s.explore_timers = true;
  s.max_depth = max_depth;
  return s;
}

TEST(Explorer, TaskAtBoundIsSafeUnderExhaustiveSearch) {
  // Depth-bounded exhaustive search over delivery orders, timer firings and
  // one mid-step crash: no schedule violates safety.
  const auto scenario = tiny_task_scenario(SelectionPolicy::kPaper, 1, 10);
  const ExploreResult r = Explorer<TwoStepProcess>::explore(scenario, 60000);
  EXPECT_FALSE(r.violation) << r.what;
  EXPECT_GT(r.traces, 100);
}

TEST(Explorer, ReportsReplayableSchedules) {
  // Use a mutant so a violation exists (the fuzzer finds it quickly), then
  // replay its schedule and check the violation reproduces exactly.
  const SystemConfig cfg{5, 2, 2};  // below the task bound: violations exist
  Scenario<TwoStepProcess> scenario;
  scenario.config = cfg;
  scenario.factory = factory(cfg, Mode::kTask);
  scenario.setup = [](DirectDrive<TwoStepProcess>& d) {
    d.start_all();
    for (ProcessId p = 0; p < 5; ++p) d.propose(p, Value{p + 1});
  };
  scenario.may_crash = {0, 1, 2, 3, 4};
  scenario.crash_budget = 2;
  const ExploreResult r = Explorer<TwoStepProcess>::fuzz(scenario, 30000, /*seed=*/3, 250);
  ASSERT_TRUE(r.violation);
  auto drive = Explorer<TwoStepProcess>::replay_schedule(scenario, r.schedule);
  EXPECT_FALSE(drive->monitor().safe());
  EXPECT_EQ(drive->monitor().violations().front(), r.what);
}

TEST(Explorer, ExhaustsTinySpaces) {
  // With no proposals there is almost nothing to schedule; the explorer
  // must report exhaustion rather than hitting its trace budget.
  const SystemConfig cfg{3, 1, 1};
  Scenario<TwoStepProcess> s;
  s.config = cfg;
  s.factory = factory(cfg, Mode::kTask);
  s.setup = [](DirectDrive<TwoStepProcess>& d) { d.propose(0, Value{1}); };
  s.explore_timers = false;
  s.max_depth = 20;
  const ExploreResult r = Explorer<TwoStepProcess>::explore(s, 100000);
  EXPECT_TRUE(r.exhausted);
  EXPECT_FALSE(r.violation);
}

// ---------- fuzzing ----------

TEST(Fuzzer, ObjectAtBoundSurvivesRandomSchedules) {
  const SystemConfig cfg{5, 2, 2};  // object bound for e=2, f=2
  Scenario<TwoStepProcess> s;
  s.config = cfg;
  s.factory = factory(cfg, Mode::kObject);
  s.setup = [](DirectDrive<TwoStepProcess>& d) {
    d.start_all();
    d.propose(0, Value{1});
    d.propose(2, Value{2});
    d.propose(4, Value{3});
  };
  s.may_crash = {0, 1, 2, 3, 4};
  s.crash_budget = 2;
  const ExploreResult r = Explorer<TwoStepProcess>::fuzz(s, 800, /*seed=*/42, 200);
  EXPECT_FALSE(r.violation) << r.what;
  EXPECT_EQ(r.traces, 800);
}

TEST(Fuzzer, TaskAtBoundSurvivesRandomSchedules) {
  const SystemConfig cfg{6, 2, 2};  // task bound for e=2, f=2
  Scenario<TwoStepProcess> s;
  s.config = cfg;
  s.factory = factory(cfg, Mode::kTask);
  s.setup = [](DirectDrive<TwoStepProcess>& d) {
    d.start_all();
    for (ProcessId p = 0; p < 6; ++p) d.propose(p, Value{p + 1});
  };
  s.may_crash = {0, 1, 2, 3, 4, 5};
  s.crash_budget = 2;
  const ExploreResult r = Explorer<TwoStepProcess>::fuzz(s, 600, /*seed=*/7, 250);
  EXPECT_FALSE(r.violation) << r.what;
}

TEST(Fuzzer, BelowBoundTaskProtocolEventuallyCaught) {
  // n = 2e+f-1 = 5 for e=2, f=2: the configuration the Theorem 5 lower
  // bound forbids.  Random schedules with mid-step crashes find the
  // Appendix B violation without being told the construction.
  const SystemConfig cfg{5, 2, 2};
  Scenario<TwoStepProcess> s;
  s.config = cfg;
  s.factory = factory(cfg, Mode::kTask);
  s.setup = [](DirectDrive<TwoStepProcess>& d) {
    d.start_all();
    for (ProcessId p = 0; p < 5; ++p) d.propose(p, Value{p + 1});
  };
  s.may_crash = {0, 1, 2, 3, 4};
  s.crash_budget = 2;
  const ExploreResult r = Explorer<TwoStepProcess>::fuzz(s, 30000, /*seed=*/3, 250);
  EXPECT_TRUE(r.violation) << "no violation in " << r.traces << " random schedules";
}

}  // namespace
}  // namespace twostep::modelcheck
