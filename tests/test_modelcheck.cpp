// Tests for DirectDrive and the bounded model checker / schedule fuzzer:
// exhaustive exploration of tiny configurations finds no safety violation
// for the paper's protocol at its bounds, and deliberately weakened
// selection rules (the A1 ablation mutants) are caught.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "core/two_step.hpp"
#include "modelcheck/direct_drive.hpp"
#include "modelcheck/explorer.hpp"

namespace twostep::modelcheck {
namespace {

using consensus::ProcessId;
using consensus::SystemConfig;
using consensus::Value;
using core::Message;
using core::Mode;
using core::SelectionPolicy;
using core::TwoStepProcess;

DirectDrive<TwoStepProcess>::Factory factory(SystemConfig cfg, Mode mode,
                                             SelectionPolicy policy = SelectionPolicy::kPaper,
                                             ProcessId leader = 0) {
  return [cfg, mode, policy, leader](consensus::Env<Message>& env, ProcessId) {
    core::Options o;
    o.mode = mode;
    o.delta = 100;
    o.selection_policy = policy;
    o.leader_of = [leader] { return leader; };
    return std::make_unique<TwoStepProcess>(env, cfg, o);
  };
}

// ---------- DirectDrive mechanics ----------

TEST(DirectDrive, CollectsSendsIntoPool) {
  const SystemConfig cfg{3, 1, 1};
  DirectDrive<TwoStepProcess> d{cfg, factory(cfg, Mode::kTask)};
  d.propose(0, Value{5});
  EXPECT_EQ(d.pool().size(), 2u);  // Propose to p1, p2
}

TEST(DirectDrive, DeliverIndexInvokesHandler) {
  const SystemConfig cfg{3, 1, 1};
  DirectDrive<TwoStepProcess> d{cfg, factory(cfg, Mode::kTask)};
  d.propose(0, Value{5});
  d.deliver_index(0);  // Propose(5) -> p1
  EXPECT_EQ(d.process(1).vote_value(), Value{5});
  EXPECT_EQ(d.pool().size(), 2u);  // p1's 2B to p0 replaced the consumed msg
}

TEST(DirectDrive, CrashedReceiverConsumesSilently) {
  const SystemConfig cfg{3, 1, 1};
  DirectDrive<TwoStepProcess> d{cfg, factory(cfg, Mode::kTask)};
  d.propose(0, Value{5});
  d.crash(1);
  d.deliver_all();
  EXPECT_TRUE(d.process(1).vote_value().is_bottom());
}

TEST(DirectDrive, CrashSuppressingOutboxDropsPending) {
  const SystemConfig cfg{3, 1, 1};
  DirectDrive<TwoStepProcess> d{cfg, factory(cfg, Mode::kTask)};
  d.propose(0, Value{5});
  ASSERT_EQ(d.pool().size(), 2u);
  d.crash_suppressing_outbox(0);
  EXPECT_TRUE(d.pool().empty());
}

TEST(DirectDrive, TimersFireManuallyInFifoOrder) {
  const SystemConfig cfg{3, 1, 1};
  DirectDrive<TwoStepProcess> d{cfg, factory(cfg, Mode::kTask)};
  d.start_all();
  EXPECT_EQ(d.armed_timers(0), 1);
  EXPECT_TRUE(d.fire_next_timer(0));  // leader starts a ballot (re-arms)
  EXPECT_EQ(d.armed_timers(0), 1);
  EXPECT_FALSE(d.fire_next_timer(1) && false);  // p1 is not the leader; timer fires, no 1A
}

TEST(DirectDrive, DeliverWhereRespectsLimitAndPredicate) {
  const SystemConfig cfg{4, 1, 1};
  DirectDrive<TwoStepProcess> d{cfg, factory(cfg, Mode::kTask)};
  d.propose(0, Value{5});
  d.propose(1, Value{6});
  const int delivered = d.deliver_where(
      [](const auto& m) { return m.from == 0; }, 2);
  EXPECT_EQ(delivered, 2);
}

TEST(DirectDrive, FullDeliveryDecidesAndStaysSafe) {
  const SystemConfig cfg{3, 1, 1};
  DirectDrive<TwoStepProcess> d{cfg, factory(cfg, Mode::kTask)};
  d.start_all();
  d.propose(0, Value{1});
  d.propose(1, Value{2});
  d.propose(2, Value{3});
  d.deliver_all();
  EXPECT_TRUE(d.monitor().safe());
  EXPECT_GE(d.monitor().decided_count(), 1);
}

// ---------- exhaustive exploration ----------

Scenario<TwoStepProcess> tiny_task_scenario(SelectionPolicy policy, int crash_budget,
                                            int max_depth) {
  const SystemConfig cfg{3, 1, 1};  // the task bound for e=1, f=1
  Scenario<TwoStepProcess> s;
  s.config = cfg;
  s.factory = factory(cfg, Mode::kTask, policy);
  s.setup = [](DirectDrive<TwoStepProcess>& d) {
    d.start_all();
    d.propose(0, Value{1});
    d.propose(1, Value{2});
    d.propose(2, Value{3});
  };
  s.may_crash = {0, 1, 2};
  s.crash_budget = crash_budget;
  s.explore_timers = true;
  s.max_depth = max_depth;
  return s;
}

TEST(Explorer, TaskAtBoundIsSafeUnderExhaustiveSearch) {
  // Depth-bounded exhaustive search over delivery orders, timer firings and
  // one mid-step crash: no schedule violates safety.
  const auto scenario = tiny_task_scenario(SelectionPolicy::kPaper, 1, 10);
  const ExploreResult r = Explorer<TwoStepProcess>::explore(scenario, 60000);
  EXPECT_FALSE(r.violation) << r.what;
  EXPECT_GT(r.traces, 100);
}

TEST(Explorer, ReportsReplayableSchedules) {
  // Use a mutant so a violation exists (the fuzzer finds it quickly), then
  // replay its schedule and check the violation reproduces exactly.
  const SystemConfig cfg{5, 2, 2};  // below the task bound: violations exist
  Scenario<TwoStepProcess> scenario;
  scenario.config = cfg;
  scenario.factory = factory(cfg, Mode::kTask);
  scenario.setup = [](DirectDrive<TwoStepProcess>& d) {
    d.start_all();
    for (ProcessId p = 0; p < 5; ++p) d.propose(p, Value{p + 1});
  };
  scenario.may_crash = {0, 1, 2, 3, 4};
  scenario.crash_budget = 2;
  const ExploreResult r = Explorer<TwoStepProcess>::fuzz(scenario, 30000, /*seed=*/7, 250);
  ASSERT_TRUE(r.violation);
  auto drive = Explorer<TwoStepProcess>::replay_schedule(scenario, r.schedule);
  EXPECT_FALSE(drive->monitor().safe());
  EXPECT_EQ(drive->monitor().violations().front(), r.what);
}

TEST(Explorer, ExhaustsTinySpaces) {
  // With no proposals there is almost nothing to schedule; the explorer
  // must report exhaustion rather than hitting its trace budget.
  const SystemConfig cfg{3, 1, 1};
  Scenario<TwoStepProcess> s;
  s.config = cfg;
  s.factory = factory(cfg, Mode::kTask);
  s.setup = [](DirectDrive<TwoStepProcess>& d) { d.propose(0, Value{1}); };
  s.explore_timers = false;
  s.max_depth = 20;
  const ExploreResult r = Explorer<TwoStepProcess>::explore(s, 100000);
  EXPECT_TRUE(r.exhausted);
  EXPECT_FALSE(r.violation);
}

// ---------- fuzzing ----------

TEST(Fuzzer, ObjectAtBoundSurvivesRandomSchedules) {
  const SystemConfig cfg{5, 2, 2};  // object bound for e=2, f=2
  Scenario<TwoStepProcess> s;
  s.config = cfg;
  s.factory = factory(cfg, Mode::kObject);
  s.setup = [](DirectDrive<TwoStepProcess>& d) {
    d.start_all();
    d.propose(0, Value{1});
    d.propose(2, Value{2});
    d.propose(4, Value{3});
  };
  s.may_crash = {0, 1, 2, 3, 4};
  s.crash_budget = 2;
  const ExploreResult r = Explorer<TwoStepProcess>::fuzz(s, 800, /*seed=*/42, 200);
  EXPECT_FALSE(r.violation) << r.what;
  EXPECT_EQ(r.traces, 800);
}

TEST(Fuzzer, TaskAtBoundSurvivesRandomSchedules) {
  const SystemConfig cfg{6, 2, 2};  // task bound for e=2, f=2
  Scenario<TwoStepProcess> s;
  s.config = cfg;
  s.factory = factory(cfg, Mode::kTask);
  s.setup = [](DirectDrive<TwoStepProcess>& d) {
    d.start_all();
    for (ProcessId p = 0; p < 6; ++p) d.propose(p, Value{p + 1});
  };
  s.may_crash = {0, 1, 2, 3, 4, 5};
  s.crash_budget = 2;
  const ExploreResult r = Explorer<TwoStepProcess>::fuzz(s, 600, /*seed=*/7, 250);
  EXPECT_FALSE(r.violation) << r.what;
}

TEST(Fuzzer, BelowBoundTaskProtocolEventuallyCaught) {
  // n = 2e+f-1 = 5 for e=2, f=2: the configuration the Theorem 5 lower
  // bound forbids.  Random schedules with mid-step crashes find the
  // Appendix B violation without being told the construction.
  const SystemConfig cfg{5, 2, 2};
  Scenario<TwoStepProcess> s;
  s.config = cfg;
  s.factory = factory(cfg, Mode::kTask);
  s.setup = [](DirectDrive<TwoStepProcess>& d) {
    d.start_all();
    for (ProcessId p = 0; p < 5; ++p) d.propose(p, Value{p + 1});
  };
  s.may_crash = {0, 1, 2, 3, 4};
  s.crash_budget = 2;
  const ExploreResult r = Explorer<TwoStepProcess>::fuzz(s, 30000, /*seed=*/7, 250);
  EXPECT_TRUE(r.violation) << "no violation in " << r.traces << " random schedules";
}

// ---------- trace accounting & crash budget ----------

// A deliberately unsafe two-process toy: propose(v) mails v to the peer and
// delivering a message decides its value.  With different proposals the
// schedule [deliver, deliver] violates Agreement — handy for pinning the
// explorer's accounting without a 30k-trace hunt.
struct PokeProcess {
  using Message = int;

  PokeProcess(consensus::Env<Message>& env) : env_(&env) {}

  std::function<void(Value)> on_decide;

  void start() {}
  void propose(Value v) { env_->send(1 - env_->self(), static_cast<int>(v.get())); }
  void on_message(ProcessId, const Message& m) {
    if (decided_) return;
    decided_ = true;
    if (on_decide) on_decide(Value{m});
  }
  void on_timer(consensus::TimerId) {}

  consensus::Env<Message>* env_;
  bool decided_ = false;
};

Scenario<PokeProcess> poke_scenario() {
  Scenario<PokeProcess> s;
  s.config = SystemConfig{2, 0, 0};
  s.factory = [](consensus::Env<int>& env, ProcessId) {
    return std::make_unique<PokeProcess>(env);
  };
  s.setup = [](DirectDrive<PokeProcess>& d) {
    d.propose(0, Value{1});
    d.propose(1, Value{2});
  };
  s.explore_timers = false;
  s.max_depth = 8;
  return s;
}

TEST(Explorer, ViolatingScheduleCountsAsExaminedTrace) {
  // Convention pinned on ExploreResult: a schedule that exhibits a violation
  // IS counted.  DFS order makes [0, 0] the first complete schedule here, so
  // the violating run is exactly trace #1.
  const ExploreResult r = Explorer<PokeProcess>::explore(poke_scenario(), 1000);
  ASSERT_TRUE(r.violation);
  EXPECT_EQ(r.traces, 1);
  EXPECT_EQ(r.schedule, (std::vector<int>{0, 0}));
  auto drive = Explorer<PokeProcess>::replay_schedule(poke_scenario(), r.schedule);
  EXPECT_EQ(drive->monitor().violations().front(), r.what);
}

TEST(Fuzzer, ViolatingScheduleCountsAsExaminedTrace) {
  // Same convention for fuzz: every examined schedule — violating or not —
  // contributes to `traces`, so the count is >= 1 whenever a schedule ran.
  const ExploreResult r = Explorer<PokeProcess>::fuzz(poke_scenario(), 64, /*seed=*/1, 10);
  ASSERT_TRUE(r.violation);
  EXPECT_GE(r.traces, 1);
  EXPECT_LE(r.traces, 64);
}

TEST(Explorer, SetupCrashesDoNotConsumeTheCrashBudget) {
  // The documented contract: crash_budget is "on top of crashes done by
  // setup".  Regression: crash_victims() used to count a process crashed by
  // `setup` against the budget, so a budget-1 scenario whose setup crashes a
  // may_crash member degenerated to budget 0 (no crash actions explored).
  auto scenario = [](int crash_budget) {
    const SystemConfig cfg{3, 1, 1};
    Scenario<TwoStepProcess> s;
    s.config = cfg;
    s.factory = factory(cfg, Mode::kTask);
    s.setup = [](DirectDrive<TwoStepProcess>& d) {
      d.crash(2);  // the scenario's premise, not an adversary move
      d.start_all();
      d.propose(0, Value{1});
    };
    s.may_crash = {0, 1, 2};
    s.crash_budget = crash_budget;
    s.explore_timers = false;
    s.max_depth = 6;
    return s;
  };
  const ExploreResult with_budget = Explorer<TwoStepProcess>::explore(scenario(1), 100000);
  const ExploreResult no_budget = Explorer<TwoStepProcess>::explore(scenario(0), 100000);
  ASSERT_TRUE(with_budget.exhausted);
  ASSERT_TRUE(no_budget.exhausted);
  // With the budget usable the explorer schedules extra crash actions, so it
  // must see strictly more schedules; under the old accounting both runs
  // explored the identical space.
  EXPECT_GT(with_budget.traces, no_budget.traces);
}

// ---------- parallel fuzzing determinism ----------

ExploreResult fuzz_below_bound(int traces, int jobs) {
  const SystemConfig cfg{5, 2, 2};
  Scenario<TwoStepProcess> s;
  s.config = cfg;
  s.factory = factory(cfg, Mode::kTask);
  s.setup = [](DirectDrive<TwoStepProcess>& d) {
    d.start_all();
    for (ProcessId p = 0; p < 5; ++p) d.propose(p, Value{p + 1});
  };
  s.may_crash = {0, 1, 2, 3, 4};
  s.crash_budget = 2;
  return Explorer<TwoStepProcess>::fuzz(s, traces, /*seed=*/3, 250, jobs);
}

TEST(Fuzzer, JobsCountDoesNotChangeTheResult) {
  // The tentpole guarantee: fuzz output is byte-identical for any --jobs.
  // Exercises both the no-violation path (counts must match exactly) and the
  // early-stop path on the unsafe toy scenario (the winning schedule must be
  // the lowest-index shard's for every thread count).
  const ExploreResult seq = fuzz_below_bound(2000, 1);
  const ExploreResult par = fuzz_below_bound(2000, 8);
  EXPECT_EQ(seq.traces, par.traces);
  EXPECT_EQ(seq.steps, par.steps);
  EXPECT_EQ(seq.violation, par.violation);
  EXPECT_EQ(seq.what, par.what);
  EXPECT_EQ(seq.schedule, par.schedule);

  const ExploreResult toy_seq = Explorer<PokeProcess>::fuzz(poke_scenario(), 640, 9, 10, 1);
  const ExploreResult toy_par = Explorer<PokeProcess>::fuzz(poke_scenario(), 640, 9, 10, 8);
  ASSERT_TRUE(toy_seq.violation);  // nearly every random schedule violates
  EXPECT_EQ(toy_seq.traces, toy_par.traces);
  EXPECT_EQ(toy_seq.steps, toy_par.steps);
  EXPECT_EQ(toy_seq.what, toy_par.what);
  EXPECT_EQ(toy_seq.schedule, toy_par.schedule);
}

}  // namespace
}  // namespace twostep::modelcheck
