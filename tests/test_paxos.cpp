// Tests for the classical Paxos baseline: unit preconditions, the
// 0-two-step behaviour with a correct initial leader, the > 2Δ latency once
// the leader is in the crash set, and safety/liveness sweeps.
#include <gtest/gtest.h>

#include "mock_env.hpp"
#include "paxos/paxos.hpp"
#include "support.hpp"

namespace twostep::paxos {
namespace {

using consensus::ProcessId;
using consensus::SyncScenario;
using consensus::SystemConfig;
using consensus::Value;
using testing::RunSpec;
using testing::MockEnv;

constexpr sim::Tick kDelta = 100;

struct Fixture {
  explicit Fixture(SystemConfig cfg, ProcessId self = 0)
      : env(self, cfg.n), proc(env, cfg, make_options()) {}

  static Options make_options() {
    Options o;
    o.delta = kDelta;
    o.enable_ballot_timer = false;
    return o;
  }

  MockEnv<Message> env;
  PaxosProcess proc;
};

TEST(PaxosUnit, InitialLeaderGoesStraightToPhase2) {
  Fixture f{SystemConfig{3, 1, 0}, /*self=*/0};
  f.proc.propose(Value{5});
  EXPECT_EQ(f.env.count_sent([](ProcessId, const Message& m) {
              return std::holds_alternative<AcceptMsg>(m) && std::get<AcceptMsg>(m).b == 0;
            }),
            3);  // broadcast to all, including self
}

TEST(PaxosUnit, NonLeaderDoesNotProposeDirectly) {
  Fixture f{SystemConfig{3, 1, 0}, /*self=*/1};
  f.proc.propose(Value{5});
  EXPECT_TRUE(f.env.sent().empty());
}

TEST(PaxosUnit, AcceptorVotesAndBroadcastsAccepted) {
  Fixture f{SystemConfig{3, 1, 0}, /*self=*/1};
  f.proc.on_message(0, Message{AcceptMsg{0, Value{5}}});
  EXPECT_EQ(f.env.count_sent([](ProcessId, const Message& m) {
              return std::holds_alternative<AcceptedMsg>(m);
            }),
            3);
}

TEST(PaxosUnit, StaleAcceptIgnored) {
  Fixture f{SystemConfig{3, 1, 0}, /*self=*/1};
  f.proc.on_message(0, Message{PrepareMsg{4}});
  f.env.clear_sent();
  f.proc.on_message(0, Message{AcceptMsg{2, Value{5}}});  // 2 < bal = 4
  EXPECT_TRUE(f.env.sent().empty());
}

TEST(PaxosUnit, PromiseCarriesLastVote) {
  Fixture f{SystemConfig{3, 1, 0}, /*self=*/1};
  f.proc.on_message(0, Message{AcceptMsg{0, Value{5}}});
  f.env.clear_sent();
  f.proc.on_message(2, Message{PrepareMsg{5}});
  const auto to2 = f.env.sent_to(2);
  ASSERT_EQ(to2.size(), 1u);
  const auto& promise = std::get<PromiseMsg>(to2.front());
  EXPECT_EQ(promise.vbal, 0);
  EXPECT_EQ(promise.vval, Value{5});
}

TEST(PaxosUnit, StalePrepareIgnored) {
  Fixture f{SystemConfig{3, 1, 0}, /*self=*/1};
  f.proc.on_message(2, Message{PrepareMsg{5}});
  f.env.clear_sent();
  f.proc.on_message(2, Message{PrepareMsg{5}});
  f.proc.on_message(2, Message{PrepareMsg{3}});
  EXPECT_TRUE(f.env.sent().empty());
}

TEST(PaxosUnit, RecoveryAdoptsHighestVote) {
  // p1 leads ballot 4 (4 mod 3 == 1); promises report votes at ballots 0
  // and 2; the ballot-2 vote must win.
  Fixture f{SystemConfig{3, 1, 0}, /*self=*/1};
  f.proc.propose(Value{9});
  f.proc.on_message(0, Message{PromiseMsg{4, 0, Value{5}}});
  f.proc.on_message(2, Message{PromiseMsg{4, 2, Value{7}}});
  EXPECT_EQ(f.env.count_sent([](ProcessId, const Message& m) {
              return std::holds_alternative<AcceptMsg>(m) &&
                     std::get<AcceptMsg>(m).v == Value{7};
            }),
            3);
}

TEST(PaxosUnit, RecoveryFallsBackToOwnValue) {
  Fixture f{SystemConfig{3, 1, 0}, /*self=*/1};
  f.proc.propose(Value{9});
  f.proc.on_message(0, Message{PromiseMsg{4, -1, {}}});
  f.proc.on_message(2, Message{PromiseMsg{4, -1, {}}});
  EXPECT_EQ(f.env.count_sent([](ProcessId, const Message& m) {
              return std::holds_alternative<AcceptMsg>(m) &&
                     std::get<AcceptMsg>(m).v == Value{9};
            }),
            3);
}

TEST(PaxosUnit, DecidesOnClassicQuorumOfAccepted) {
  Fixture f{SystemConfig{3, 1, 0}, /*self=*/2};
  Value decided;
  f.proc.on_decide = [&](Value v) { decided = v; };
  f.proc.on_message(0, Message{AcceptedMsg{0, Value{5}}});
  EXPECT_FALSE(f.proc.has_decided());
  f.proc.on_message(1, Message{AcceptedMsg{0, Value{5}}});
  EXPECT_TRUE(f.proc.has_decided());
  EXPECT_EQ(decided, Value{5});
}

TEST(PaxosUnit, MixedBallotAcceptedDoNotCount) {
  Fixture f{SystemConfig{3, 1, 0}, /*self=*/2};
  f.proc.on_message(0, Message{AcceptedMsg{0, Value{5}}});
  f.proc.on_message(1, Message{AcceptedMsg{4, Value{5}}});
  EXPECT_FALSE(f.proc.has_decided());
}

// ---------- end-to-end ----------

TEST(PaxosRun, FailureFreeEveryoneDecidesAtTwoDelta) {
  // Paxos with a correct pre-established leader IS 0-two-step: Accepted is
  // broadcast, so all processes decide at 2Δ.
  const SystemConfig cfg{3, 1, 0};
  auto r = RunSpec(cfg).delta(kDelta).paxos();
  SyncScenario s;
  s.proposals = {{0, Value{10}}, {1, Value{20}}, {2, Value{30}}};
  r->run(s);
  EXPECT_TRUE(r->monitor().safe());
  for (ProcessId p = 0; p < cfg.n; ++p) {
    EXPECT_TRUE(r->monitor().two_step_for(p, kDelta)) << "p" << p;
    EXPECT_EQ(r->monitor().decision(p), Value{10});  // leader's value
  }
}

TEST(PaxosRun, LeaderCrashMakesItSlow) {
  // The paper's point: Paxos is not e-two-step for e > 0.  With the initial
  // leader crashed, nobody can decide by 2Δ.
  const SystemConfig cfg{3, 1, 1};
  auto r = RunSpec(cfg).delta(kDelta).paxos();
  SyncScenario s;
  s.crashes = {0};
  s.proposals = {{0, Value{10}}, {1, Value{20}}, {2, Value{30}}};
  r->run(s);
  EXPECT_TRUE(r->monitor().safe());
  EXPECT_TRUE(r->monitor().undecided_correct(cfg.n).empty());
  for (ProcessId p = 1; p < cfg.n; ++p)
    EXPECT_FALSE(r->monitor().two_step_for(p, kDelta)) << "p" << p;
}

TEST(PaxosRun, RecoveredValueIsTheVotedOne) {
  // Leader decides... no: leader's Accept reaches acceptors, leader crashes
  // before Accepted quorum forms at others?  With broadcasts everyone still
  // learns.  Instead crash the leader right after propose: its Accept(0,10)
  // is still delivered (reliable links), acceptors vote 10, and recovery by
  // p1 must re-propose 10.
  const SystemConfig cfg{3, 1, 1};
  auto r = RunSpec(cfg).delta(kDelta).paxos();
  r->cluster().start_all();
  r->cluster().propose(0, Value{10});
  r->cluster().crash(0);
  r->cluster().propose(1, Value{20});
  r->cluster().propose(2, Value{30});
  r->cluster().run();
  EXPECT_TRUE(r->monitor().safe());
  EXPECT_EQ(r->monitor().decision(1), Value{10});
  EXPECT_EQ(r->monitor().decision(2), Value{10});
}

TEST(PaxosRun, SurvivesMaxCrashes) {
  const SystemConfig cfg{5, 2, 2};
  auto r = RunSpec(cfg).delta(kDelta).paxos();
  SyncScenario s;
  s.crashes = {0, 1};
  s.proposals = {{0, Value{1}}, {1, Value{2}}, {2, Value{3}}, {3, Value{4}}, {4, Value{5}}};
  r->run(s);
  EXPECT_TRUE(r->monitor().safe());
  EXPECT_TRUE(r->monitor().undecided_correct(cfg.n).empty());
}

class PaxosPartialSynchrony : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PaxosPartialSynchrony, SafeAndLiveAcrossSeeds) {
  const SystemConfig cfg{5, 2, 0};
  paxos::Options options;
  options.delta = kDelta;
  auto r = std::make_unique<testing::PaxosRunner>(
      cfg, std::make_unique<net::PartialSynchrony>(1500, kDelta, 1200), options, GetParam());
  SyncScenario s;
  s.proposals = {{0, Value{10}}, {1, Value{20}}, {2, Value{30}}, {3, Value{40}}, {4, Value{50}}};
  r->cluster().crash_at(300, 1);
  r->run(s);
  EXPECT_TRUE(r->monitor().safe()) << r->monitor().violations().front();
  EXPECT_TRUE(r->cluster().all_correct_decided());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaxosPartialSynchrony,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace twostep::paxos
