// Transport layer: wire framing, the epoll event loop, and framed TCP
// connections with reconnect over loopback.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <functional>
#include <initializer_list>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "transport/chaos.hpp"
#include "transport/event_loop.hpp"
#include "transport/tcp.hpp"
#include "transport/wire.hpp"

namespace twostep {
namespace {

using transport::Frame;
using transport::FrameKind;
using transport::FrameParser;

std::vector<std::uint8_t> bytes(std::initializer_list<int> xs) {
  std::vector<std::uint8_t> out;
  for (int x : xs) out.push_back(static_cast<std::uint8_t>(x));
  return out;
}

// ---- framing --------------------------------------------------------------

TEST(TransportWire, RoundTripsSingleFrame) {
  const auto payload = bytes({1, 2, 3, 4, 5});
  const auto frame = transport::make_frame(FrameKind::kCore, payload);
  ASSERT_EQ(frame.size(), transport::kHeaderSize + payload.size());

  FrameParser parser;
  ASSERT_TRUE(parser.feed(frame));
  const auto parsed = parser.next();
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->kind, FrameKind::kCore);
  EXPECT_EQ(parsed->payload, payload);
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_FALSE(parser.failed());
}

TEST(TransportWire, ReassemblesFromSingleByteFeeds) {
  std::vector<std::uint8_t> stream;
  transport::append_frame(stream, FrameKind::kHello, transport::encode_hello(3));
  transport::append_frame(stream, FrameKind::kClientRequest, bytes({42}));
  transport::append_frame(stream, FrameKind::kClientReply, {});  // empty payload

  FrameParser parser;
  std::vector<Frame> frames;
  for (const std::uint8_t b : stream) {
    ASSERT_TRUE(parser.feed({&b, 1}));
    while (auto f = parser.next()) frames.push_back(std::move(*f));
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].kind, FrameKind::kHello);
  EXPECT_EQ(transport::decode_hello(frames[0].payload), 3);
  EXPECT_EQ(frames[1].kind, FrameKind::kClientRequest);
  EXPECT_EQ(frames[1].payload, bytes({42}));
  EXPECT_EQ(frames[2].kind, FrameKind::kClientReply);
  EXPECT_TRUE(frames[2].payload.empty());
}

TEST(TransportWire, RejectsBadMagic) {
  auto frame = transport::make_frame(FrameKind::kCore, bytes({1}));
  frame[0] = 'X';
  FrameParser parser;
  EXPECT_FALSE(parser.feed(frame));
  EXPECT_TRUE(parser.failed());
  EXPECT_FALSE(parser.next().has_value());
  // Sticky: even valid follow-up data is refused.
  EXPECT_FALSE(parser.feed(transport::make_frame(FrameKind::kCore, bytes({1}))));
}

TEST(TransportWire, RejectsUnknownVersion) {
  auto frame = transport::make_frame(FrameKind::kCore, bytes({1}));
  frame[2] = 9;
  FrameParser parser;
  EXPECT_FALSE(parser.feed(frame));
  EXPECT_TRUE(parser.failed());
}

TEST(TransportWire, RejectsUnknownFrameKind) {
  auto frame = transport::make_frame(FrameKind::kCore, bytes({1}));
  frame[3] = 0x7F;
  FrameParser parser;
  EXPECT_FALSE(parser.feed(frame));
  EXPECT_TRUE(parser.failed());
}

TEST(TransportWire, RejectsOversizePayloadLength) {
  std::vector<std::uint8_t> header = {'T', 'S', transport::kWireVersion,
                                      static_cast<std::uint8_t>(FrameKind::kCore),
                                      0xFF, 0xFF, 0xFF, 0x7F};
  FrameParser parser;
  EXPECT_FALSE(parser.feed(header));
  EXPECT_TRUE(parser.failed());
}

TEST(TransportWire, DetectsGarbageBetweenFrames) {
  std::vector<std::uint8_t> stream;
  transport::append_frame(stream, FrameKind::kCore, bytes({1}));
  stream.push_back(0xEE);  // junk where the next header should start
  stream.push_back(0xEE);
  for (std::size_t i = 0; i < transport::kHeaderSize; ++i) stream.push_back(0);

  FrameParser parser;
  parser.feed(stream);
  const auto first = parser.next();
  ASSERT_TRUE(first.has_value());  // the valid frame still comes out
  EXPECT_TRUE(parser.failed());    // then the stream is poisoned
  EXPECT_FALSE(parser.next().has_value());
}

TEST(TransportWire, HelloRejectsMalformedPayloads) {
  EXPECT_FALSE(transport::decode_hello(bytes({})).has_value());
  EXPECT_FALSE(transport::decode_hello(bytes({0x80})).has_value());  // truncated varint
  EXPECT_FALSE(transport::decode_hello(bytes({2, 7})).has_value());  // trailing byte
  // Negative ids are not valid process ids.
  EXPECT_FALSE(transport::decode_hello(transport::encode_hello(-1)).has_value());
  EXPECT_EQ(transport::decode_hello(transport::encode_hello(0)), 0);
  EXPECT_EQ(transport::decode_hello(transport::encode_hello(41)), 41);
}

// ---- event loop -----------------------------------------------------------

TEST(TransportLoop, RunsTimersInDeadlineOrder) {
  transport::EventLoop loop;
  std::vector<int> order;
  loop.schedule_after(3'000, [&] { order.push_back(3); });
  loop.schedule_after(1'000, [&] { order.push_back(1); });
  const std::uint64_t cancelled = loop.schedule_after(2'000, [&] { order.push_back(2); });
  loop.schedule_after(4'000, [&] {
    order.push_back(4);
    loop.request_stop();
  });
  EXPECT_TRUE(loop.cancel_timer(cancelled));
  EXPECT_FALSE(loop.cancel_timer(cancelled));  // already cancelled
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 4}));
}

TEST(TransportLoop, PostFromAnotherThreadWakesTheLoop) {
  transport::EventLoop loop;
  std::atomic<int> ran{0};
  std::thread poster([&] {
    for (int i = 0; i < 100; ++i)
      loop.post([&] {
        if (ran.fetch_add(1) + 1 == 100) loop.request_stop();
      });
  });
  loop.run();
  poster.join();
  EXPECT_EQ(ran.load(), 100);
}

TEST(TransportLoop, TimerScheduledFromTimerFires) {
  transport::EventLoop loop;
  int fired = 0;
  loop.schedule_after(0, [&] {
    ++fired;
    loop.schedule_after(0, [&] {
      ++fired;
      loop.request_stop();
    });
  });
  loop.run();
  EXPECT_EQ(fired, 2);
}

// ---- TCP over loopback ----------------------------------------------------

/// Accepts one inbound connection on `loop` and records its frames.
struct FrameSink {
  explicit FrameSink(transport::EventLoop& loop, transport::Endpoint at = {"127.0.0.1", 0})
      : loop(loop), ep(std::move(at)) {
    listen_fd = transport::bind_listener(ep);
    loop.add_fd(listen_fd, EPOLLIN, [this](std::uint32_t) { accept_one(); });
  }
  ~FrameSink() {
    if (listen_fd >= 0) ::close(listen_fd);
  }

  void accept_one() {
    const int cfd = ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) return;
    conn = std::make_shared<transport::Connection>(loop, cfd, nullptr);
    conn->start([this](Frame&& f) { frames.push_back(std::move(f)); },
                [this] { closed = true; });
  }

  transport::EventLoop& loop;
  transport::Endpoint ep;
  int listen_fd = -1;
  std::shared_ptr<transport::Connection> conn;
  std::vector<Frame> frames;  // loop-thread only
  bool closed = false;
};

TEST(TransportTcp, PeerLinkDeliversHelloThenFrames) {
  transport::EventLoop loop;
  FrameSink sink(loop);
  transport::TransportStats stats;
  transport::PeerLink link(loop, /*self=*/7, /*peer=*/0, sink.ep, &stats);
  link.start();
  link.send_frame(FrameKind::kCore, bytes({10, 11}));
  link.send_frame(FrameKind::kCore, bytes({12}));

  loop.schedule_after(2'000'000, [&] { loop.request_stop(); });  // safety net
  // Poll from inside the loop until all three frames arrived.
  auto check = std::make_shared<std::function<void()>>();
  *check = [&, check] {
    if (sink.frames.size() >= 3)
      loop.request_stop();
    else
      loop.schedule_after(1'000, *check);
  };
  loop.post(*check);
  loop.run();
  *check = nullptr;  // break the self-referencing capture cycle

  ASSERT_EQ(sink.frames.size(), 3u);
  EXPECT_EQ(sink.frames[0].kind, FrameKind::kHello);
  EXPECT_EQ(transport::decode_hello(sink.frames[0].payload), 7);
  EXPECT_EQ(sink.frames[1].payload, bytes({10, 11}));
  EXPECT_EQ(sink.frames[2].payload, bytes({12}));
  EXPECT_TRUE(link.connected());
  link.shutdown();
  EXPECT_FALSE(link.connected());
  EXPECT_GE(stats.frames_sent.load(), 3u);
  EXPECT_EQ(stats.reconnects.load(), 0u);
}

TEST(TransportTcp, PeerLinkQueuesWhileServerIsDownThenReconnects) {
  transport::EventLoop loop;
  transport::TransportStats stats;

  // Reserve a port, then close the listener: the link must back off and
  // queue its frames until a server appears on that port.
  transport::Endpoint ep{"127.0.0.1", 0};
  const int tmp_fd = transport::bind_listener(ep);
  ::close(tmp_fd);

  transport::PeerLink link(loop, /*self=*/1, /*peer=*/0, ep, &stats);
  link.start();
  link.send_frame(FrameKind::kCore, bytes({1}));
  link.send_frame(FrameKind::kCore, bytes({2}));

  std::unique_ptr<FrameSink> sink;
  // Bring the server up after the link has failed at least once.
  loop.schedule_after(50'000, [&] { sink = std::make_unique<FrameSink>(loop, ep); });
  loop.schedule_after(5'000'000, [&] { loop.request_stop(); });  // safety net
  auto check = std::make_shared<std::function<void()>>();
  *check = [&, check] {
    if (sink && sink->frames.size() >= 3)
      loop.request_stop();
    else
      loop.schedule_after(5'000, *check);
  };
  loop.post(*check);
  loop.run();
  *check = nullptr;  // break the self-referencing capture cycle

  ASSERT_TRUE(sink);
  ASSERT_EQ(sink->frames.size(), 3u);
  EXPECT_EQ(sink->frames[0].kind, FrameKind::kHello);
  EXPECT_EQ(transport::decode_hello(sink->frames[0].payload), 1);
  EXPECT_EQ(sink->frames[1].payload, bytes({1}));
  EXPECT_EQ(sink->frames[2].payload, bytes({2}));
  link.shutdown();
}

TEST(TransportTcp, AcceptedSocketsDisableNagle) {
  // Regression guard for the N3 latency audit: the Connection ctor must set
  // TCP_NODELAY on every fd it adopts — dialed AND accepted.  An accepted
  // server-side socket that kept Nagle on would add up to 40 ms of delayed-
  // ACK interaction to every reply, invisible in throughput tests.
  transport::EventLoop loop;
  FrameSink sink(loop);
  transport::TransportStats stats;
  transport::PeerLink link(loop, /*self=*/3, /*peer=*/0, sink.ep, &stats);
  link.start();
  link.send_frame(FrameKind::kCore, bytes({1}));
  loop.schedule_after(2'000'000, [&] { loop.request_stop(); });  // safety net
  auto check = std::make_shared<std::function<void()>>();
  *check = [&, check] {
    if (sink.conn)
      loop.request_stop();
    else
      loop.schedule_after(1'000, *check);
  };
  loop.post(*check);
  loop.run();
  *check = nullptr;
  ASSERT_TRUE(sink.conn) << "no inbound connection accepted";
  int nodelay = 0;
  socklen_t len = sizeof(nodelay);
  ASSERT_EQ(::getsockopt(sink.conn->fd(), IPPROTO_TCP, TCP_NODELAY, &nodelay, &len), 0);
  EXPECT_EQ(nodelay, 1) << "accepted socket still has Nagle enabled";
  link.shutdown();
}

TEST(TransportLoop, CancelledTimersDoNotInflateTheEpollTimeout) {
  // The live mirror of the simulator's lazily-cancelled-timer fix (PR 2):
  // cancelled heap entries must be drained before computing the epoll
  // timeout, or a pile of near-deadline cancelled timers makes the loop
  // spin (hint 0) — and, symmetrically, a cancelled NEAR timer must not
  // hide a FAR live one.
  transport::EventLoop loop;
  const std::uint64_t near = loop.schedule_after(5'000, [] {});
  loop.schedule_after(3'600'000'000, [] {});  // 1 h, effectively "far"
  EXPECT_TRUE(loop.cancel_timer(near));
  // With the near timer cancelled, the hint must reflect the far one, not
  // the stale heap top.
  const int hint = loop.next_timeout_hint_ms();
  EXPECT_GT(hint, 1'000'000) << "cancelled timer still drives the timeout";
}

TEST(TransportLoop, AllTimersCancelledMeansBlockingWait) {
  transport::EventLoop loop;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 64; ++i) ids.push_back(loop.schedule_after(1'000 + i, [] {}));
  for (const std::uint64_t id : ids) EXPECT_TRUE(loop.cancel_timer(id));
  EXPECT_EQ(loop.next_timeout_hint_ms(), -1) << "empty-after-drain heap must block indefinitely";
}

// ---- directed-link blackholes (chaos) -------------------------------------

TEST(ChaosBlackhole, DropsExactlyTheConfiguredDirectionAndWindow) {
  transport::ChaosConfig config;
  config.blackholes.push_back({/*from=*/0, /*to=*/1, /*since_us=*/100, /*heal_us=*/200});
  transport::ChaosInjector at_sender(config, /*self=*/0);
  // Inside the window, 0 -> 1 is dead; 0 -> 2 is untouched.
  EXPECT_TRUE(at_sender.decide(150, 1).dropped());
  EXPECT_FALSE(at_sender.decide(150, 2).dropped());
  // Outside the window the link is healthy in both temporal directions.
  EXPECT_FALSE(at_sender.decide(99, 1).dropped());
  EXPECT_FALSE(at_sender.decide(200, 1).dropped());
  // The reverse direction lives in 1's injector and is NOT configured:
  // asymmetric by construction, unlike a partition.
  transport::ChaosInjector at_receiver(config, /*self=*/1);
  EXPECT_FALSE(at_receiver.decide(150, 0).dropped());
}

TEST(ChaosBlackhole, NegativeHealNeverHeals) {
  transport::ChaosConfig config;
  config.blackholes.push_back({/*from=*/2, /*to=*/0, /*since_us=*/0, /*heal_us=*/-1});
  EXPECT_TRUE(config.enabled());
  transport::ChaosInjector inj(config, /*self=*/2);
  EXPECT_TRUE(inj.decide(0, 0).dropped());
  EXPECT_TRUE(inj.decide(10'000'000, 0).dropped());
  EXPECT_FALSE(inj.decide(10'000'000, 1).dropped());
}

}  // namespace
}  // namespace twostep
