// Live-vs-simulated conformance for node::Runtime.
//
// The table-driven suite runs the same seeded proposal schedule twice —
// once through harness::RunSpec (discrete-event simulator) and once on a
// real loopback TCP cluster — and asserts the worlds agree.  Rows whose
// outcome is schedule-independent (lone proposer, unanimous proposals)
// must produce *identical* decisions; racy rows (distinct values arriving
// in wall-clock order) must satisfy agreement + validity in both worlds.
//
// Everything here also runs under TSan in CI: it is the check that the
// runtime's threading discipline (loop-thread-only protocol access,
// mutex-guarded snapshots) actually holds.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "codec/codec.hpp"
#include "consensus/cluster.hpp"
#include "consensus/types.hpp"
#include "core/two_step.hpp"
#include "epaxos/host.hpp"
#include "harness/run_spec.hpp"
#include "net/latency.hpp"
#include "node/client.hpp"
#include "node/loadgen.hpp"
#include "node/local_cluster.hpp"
#include "node/runtime.hpp"
#include "obs/flight.hpp"
#include "rsm/rsm.hpp"
#include "transport/wire.hpp"

namespace twostep {
namespace {

using consensus::Value;

/// Live clusters run with a generous Δ so the fast path has comfortably
/// more than one round-trip of slack before a slow ballot could start.
constexpr sim::Tick kLiveDeltaUs = 100'000;  // 100 ms

struct Proposal {
  consensus::ProcessId p;
  std::int64_t v;
};

std::vector<std::int64_t> run_sim_core(consensus::SystemConfig config, core::Mode mode,
                                       const std::vector<Proposal>& proposals) {
  auto runner = harness::RunSpec(config).delta(100).seed(1).core(mode);
  consensus::SyncScenario scenario;
  for (const Proposal& prop : proposals) scenario.proposals.push_back({prop.p, Value{prop.v}});
  runner->run(scenario);
  std::vector<std::int64_t> decided;
  for (consensus::ProcessId p = 0; p < config.n; ++p)
    decided.push_back(runner->cluster().process(p).decided_value().get());
  return decided;
}

std::vector<std::int64_t> run_live_core(consensus::SystemConfig config, core::Mode mode,
                                        const std::vector<Proposal>& proposals) {
  node::LocalCluster<core::TwoStepProcess> cluster(
      config.n, [&](consensus::Env<core::Message>& env, obs::MetricsRegistry& reg,
                    consensus::ProcessId /*self*/) {
        core::Options options;
        options.mode = mode;
        options.delta = kLiveDeltaUs;
        options.leader_of = [] { return consensus::ProcessId{0}; };  // Ω, no crashes
        options.probe.metrics = &reg;
        return std::make_unique<core::TwoStepProcess>(env, config, options);
      });
  EXPECT_TRUE(cluster.wait_for_mesh());
  for (const Proposal& prop : proposals) cluster.node(prop.p).propose(Value{prop.v});

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  for (;;) {
    bool all = true;
    for (int p = 0; p < config.n; ++p)
      if (!cluster.node(p).has_decided()) all = false;
    if (all) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      ADD_FAILURE() << "live cluster did not decide in time";
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::vector<std::int64_t> decided;
  for (int p = 0; p < config.n; ++p) {
    const Value v = cluster.node(p).decided_value();
    decided.push_back(v.is_bottom() ? -1 : v.get());
  }
  cluster.stop();
  return decided;
}

struct ConformanceRow {
  const char* name;
  consensus::SystemConfig config;
  core::Mode mode;
  std::vector<Proposal> proposals;
  /// Exact live == sim equality (schedule-independent outcome) vs
  /// agreement + validity in each world separately.
  bool deterministic;
};

std::vector<ConformanceRow> conformance_rows() {
  return {
      {"task_lone_proposer_n4", consensus::SystemConfig(4, 1, 1), core::Mode::kTask,
       {{0, 7}}, true},
      {"object_lone_proposer_n3", consensus::SystemConfig(3, 1, 1), core::Mode::kObject,
       {{0, 11}}, true},
      {"task_unanimous_n5", consensus::SystemConfig(5, 2, 1), core::Mode::kTask,
       {{0, 42}, {1, 42}, {2, 42}, {3, 42}, {4, 42}}, true},
      {"object_unanimous_n3", consensus::SystemConfig(3, 1, 1), core::Mode::kObject,
       {{0, 5}, {1, 5}, {2, 5}}, true},
      {"task_conflicting_n4", consensus::SystemConfig(4, 1, 1), core::Mode::kTask,
       {{0, 1}, {1, 2}, {2, 3}, {3, 4}}, false},
      {"object_conflicting_n5", consensus::SystemConfig(5, 1, 1), core::Mode::kObject,
       {{0, 9}, {2, 8}}, false},
  };
}

TEST(LiveConformance, LiveAndSimulatedEnvsAgreeOnTheSameSchedule) {
  for (const ConformanceRow& row : conformance_rows()) {
    SCOPED_TRACE(row.name);
    const auto sim_decided = run_sim_core(row.config, row.mode, row.proposals);
    const auto live_decided = run_live_core(row.config, row.mode, row.proposals);
    ASSERT_EQ(sim_decided.size(), live_decided.size());

    std::set<std::int64_t> proposed;
    for (const Proposal& prop : row.proposals) proposed.insert(prop.v);

    // Agreement + validity hold in both worlds, always.
    for (std::size_t p = 1; p < sim_decided.size(); ++p) {
      EXPECT_EQ(sim_decided[p], sim_decided[0]);
      EXPECT_EQ(live_decided[p], live_decided[0]);
    }
    EXPECT_TRUE(proposed.contains(sim_decided[0]));
    EXPECT_TRUE(proposed.contains(live_decided[0]));

    // Schedule-independent rows: the two worlds decide identically.
    if (row.deterministic) {
      EXPECT_EQ(live_decided, sim_decided);
    }
  }
}

TEST(LiveConformance, FastPathSurvivesTheRealNetwork) {
  // Unanimous proposals on a 5-replica loopback cluster must produce at
  // least one genuine fast (two-step) decision — the acceptance criterion
  // that the paper's fast path is observable over real sockets, not just
  // under the simulator's lockstep rounds.
  const consensus::SystemConfig config(5, 1, 1);
  node::LocalCluster<core::TwoStepProcess> cluster(
      config.n, [&](consensus::Env<core::Message>& env, obs::MetricsRegistry& reg,
                    consensus::ProcessId) {
        core::Options options;
        options.mode = core::Mode::kTask;
        options.delta = kLiveDeltaUs;
        options.leader_of = [] { return consensus::ProcessId{0}; };
        options.probe.metrics = &reg;
        return std::make_unique<core::TwoStepProcess>(env, config, options);
      });
  ASSERT_TRUE(cluster.wait_for_mesh());
  for (int p = 0; p < config.n; ++p) cluster.node(p).propose(Value{99});

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  for (;;) {
    bool all = true;
    for (int p = 0; p < config.n; ++p)
      if (!cluster.node(p).has_decided()) all = false;
    if (all) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  cluster.stop();

  obs::MetricsRegistry merged = cluster.merged_metrics();
  EXPECT_GE(merged.counter_value("decisions.fast"), 1u);
  EXPECT_EQ(merged.counter_value("decisions.fast") + merged.counter_value("decisions.slow") +
                merged.counter_value("decisions.learned"),
            static_cast<std::uint64_t>(config.n));
  // The mesh sent real bytes.
  EXPECT_GT(merged.counter_value("transport.bytes_sent"), 0u);
}

TEST(LiveConformance, RsmAppliedLogMatchesSimulatorForSameCommandSequence) {
  const consensus::SystemConfig config(3, 1, 1);
  const std::vector<std::int64_t> payloads = {5, 17, 3, 29, 11, 2, 23, 8};

  // Simulated: replica 0 submits the same payloads at t=0, in order.
  auto runner = harness::RunSpec(config).delta(100).seed(1).rsm();
  consensus::SyncScenario scenario;
  for (const std::int64_t payload : payloads) scenario.proposals.push_back({0, Value{payload}});
  runner->run(scenario);
  std::vector<std::pair<std::int32_t, std::int64_t>> sim_log;
  auto& sim_proc = runner->cluster().process(0);
  for (std::int32_t slot = 0; slot < sim_proc.applied_prefix(); ++slot)
    sim_log.emplace_back(slot, *sim_proc.decision(slot));

  // Live: a closed-loop client drives replica 0 (its proxy) with the same
  // sequence over a real socket.
  node::LocalCluster<rsm::RsmProcess> cluster(
      config.n, [&](consensus::Env<rsm::Msg>& env, obs::MetricsRegistry& reg,
                    consensus::ProcessId) {
        rsm::Options options;
        options.delta = kLiveDeltaUs;
        options.leader_of = [] { return consensus::ProcessId{0}; };
        options.probe.metrics = &reg;
        return std::make_unique<rsm::RsmProcess>(env, config, options);
      });
  ASSERT_TRUE(cluster.wait_for_mesh());

  obs::MetricsRegistry client_metrics;
  node::ClientSession client(cluster.endpoints()[0], &client_metrics);
  ASSERT_TRUE(client.connect());
  for (const std::int64_t payload : payloads) {
    const auto reply = client.call(payload);
    ASSERT_TRUE(reply.has_value()) << "command " << payload << " got no reply";
    EXPECT_TRUE(reply->ok);
    EXPECT_EQ(rsm::RsmProcess::command_payload(reply->value), payload);
  }

  // Wait for every replica to apply the full log.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  for (;;) {
    bool all = true;
    for (int p = 0; p < config.n; ++p)
      if (cluster.node(p).applied_log().size() < payloads.size()) all = false;
    if (all) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto live_log0 = cluster.node(0).applied_log();
  // All replicas applied the same log (the RSM safety property)...
  for (int p = 1; p < config.n; ++p) EXPECT_EQ(cluster.node(p).applied_log(), live_log0);
  cluster.stop();

  // ...and it is exactly the simulator's log: a sequential proxy yields a
  // deterministic slot assignment, and commands pack (proxy 0, local id)
  // identically in both worlds.
  EXPECT_EQ(live_log0, sim_log);

  // Per-request latency was captured (in the client's log histogram).
  EXPECT_EQ(client_metrics.counter_value("client.requests"), payloads.size());
  EXPECT_EQ(client_metrics.log_histogram_snapshot("client.rtt_us").count, payloads.size());
}

TEST(LiveConformance, EPaxosExecutionOrderMatchesSimulatorForSameCommandSequence) {
  const consensus::SystemConfig config(5, 2, 2);
  const std::vector<std::int64_t> payloads = {5, 17, 3, 29, 11, 2};

  // Simulated: replica 0 submits the payloads as a closed loop (each
  // command committed and quiesced before the next), with key 0 so every
  // command interferes — the execution order is a total order.
  consensus::Cluster<epaxos::EPaxosReplica> sim_fleet(
      config, std::make_unique<net::SynchronousRounds>(100),
      [&](consensus::Env<epaxos::Message>& env, consensus::ProcessId) {
        epaxos::Options options;
        options.delta = 100;
        return std::make_unique<epaxos::EPaxosReplica>(env, config, options);
      });
  std::vector<std::vector<std::int64_t>> sim_orders(static_cast<std::size_t>(config.n));
  for (consensus::ProcessId p = 0; p < config.n; ++p) {
    sim_fleet.process(p).on_execute =
        [&sim_orders, p](epaxos::InstanceId, const epaxos::Command& c) {
          sim_orders[static_cast<std::size_t>(p)].push_back(c.payload);
        };
  }
  for (const std::int64_t payload : payloads) {
    sim_fleet.process(0).submit(epaxos::Command{0, payload});
    sim_fleet.run();
  }
  for (consensus::ProcessId p = 0; p < config.n; ++p) {
    ASSERT_EQ(sim_orders[static_cast<std::size_t>(p)].size(), payloads.size()) << "p" << p;
    EXPECT_EQ(sim_orders[static_cast<std::size_t>(p)], sim_orders[0]) << "p" << p;
  }

  // Live: a closed-loop client drives replica 0 with the same sequence over
  // a real socket; the hosted adapter's default key policy is the same
  // total-interference key 0.
  node::LocalCluster<epaxos::EPaxosRsm> cluster(
      config.n, [&](consensus::Env<epaxos::Message>& env, obs::MetricsRegistry& reg,
                    consensus::ProcessId) {
        epaxos::HostOptions host;
        host.protocol.delta = kLiveDeltaUs;
        host.protocol.probe.metrics = &reg;
        return std::make_unique<epaxos::EPaxosRsm>(env, config, host);
      });
  ASSERT_TRUE(cluster.wait_for_mesh());

  obs::MetricsRegistry client_metrics;
  node::ClientSession client(cluster.endpoints()[0], &client_metrics);
  ASSERT_TRUE(client.connect());
  for (const std::int64_t payload : payloads) {
    const auto reply = client.call(payload);
    ASSERT_TRUE(reply.has_value()) << "command " << payload << " got no reply";
    EXPECT_TRUE(reply->ok);
  }

  // Wait for every replica to execute the full sequence.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  for (;;) {
    bool all = true;
    for (int p = 0; p < config.n; ++p)
      if (cluster.node(p).applied_log().size() < payloads.size()) all = false;
    if (all) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto live_log0 = cluster.node(0).applied_log();
  for (int p = 1; p < config.n; ++p) EXPECT_EQ(cluster.node(p).applied_log(), live_log0);
  cluster.stop();

  // The live applied log carries (execution index, token); proxy 0's token
  // is the raw payload, so the two worlds' execution orders compare 1:1.
  std::vector<std::int64_t> live_order;
  for (const auto& [slot, cmd] : live_log0) live_order.push_back(cmd);
  EXPECT_EQ(live_order, sim_orders[0]);
}

TEST(LiveRuntime, SingleShotClientGetsTheDecidedValue) {
  const consensus::SystemConfig config(3, 1, 1);
  node::LocalCluster<core::TwoStepProcess> cluster(
      config.n, [&](consensus::Env<core::Message>& env, obs::MetricsRegistry& reg,
                    consensus::ProcessId) {
        core::Options options;
        options.mode = core::Mode::kObject;
        options.delta = kLiveDeltaUs;
        options.leader_of = [] { return consensus::ProcessId{0}; };
        options.probe.metrics = &reg;
        return std::make_unique<core::TwoStepProcess>(env, config, options);
      });
  ASSERT_TRUE(cluster.wait_for_mesh());

  node::ClientSession client(cluster.endpoints()[0], nullptr);
  ASSERT_TRUE(client.connect());
  const auto reply = client.call(1234);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->ok);
  EXPECT_EQ(reply->value, 1234);
  EXPECT_EQ(reply->slot, -1);

  // A second request against the decided instance answers immediately with
  // the same value, whatever payload it carries.
  const auto second = client.call(777);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->value, 1234);
  cluster.stop();
}

TEST(LiveRuntime, RejectsRsmPayloadOutsideCommandRange) {
  const consensus::SystemConfig config(3, 1, 1);
  node::LocalCluster<rsm::RsmProcess> cluster(
      config.n, [&](consensus::Env<rsm::Msg>& env, obs::MetricsRegistry& reg,
                    consensus::ProcessId) {
        rsm::Options options;
        options.delta = kLiveDeltaUs;
        options.leader_of = [] { return consensus::ProcessId{0}; };
        options.probe.metrics = &reg;
        return std::make_unique<rsm::RsmProcess>(env, config, options);
      });
  ASSERT_TRUE(cluster.wait_for_mesh());
  node::ClientSession client(cluster.endpoints()[1], nullptr);
  ASSERT_TRUE(client.connect());
  const auto reply = client.call(std::int64_t{1} << 41);  // outside the 40-bit range
  ASSERT_TRUE(reply.has_value());
  EXPECT_FALSE(reply->ok);
  cluster.stop();
}

TEST(LiveRuntime, RetriedCallKeepsTheOriginalRttClock) {
  // Regression guard (N3 latency audit): a call that times out against a
  // silent replica and fails over must report its RTT from the ORIGINAL
  // issue instant — resetting the clock on retry would hide the outage
  // from every latency histogram.  The first endpoint is a listener that
  // completes the TCP handshake (backlog) but never answers; the real
  // cluster sits behind it.
  const consensus::SystemConfig config(3, 1, 1);
  node::LocalCluster<rsm::RsmProcess> cluster(
      config.n, [&](consensus::Env<rsm::Msg>& env, obs::MetricsRegistry& reg,
                    consensus::ProcessId) {
        rsm::Options options;
        options.delta = kLiveDeltaUs;
        options.leader_of = [] { return consensus::ProcessId{0}; };
        options.probe.metrics = &reg;
        return std::make_unique<rsm::RsmProcess>(env, config, options);
      });
  ASSERT_TRUE(cluster.wait_for_mesh());

  transport::Endpoint silent_ep{"127.0.0.1", 0};
  const int silent_fd = transport::bind_listener(silent_ep);  // never accepts
  ASSERT_GE(silent_fd, 0);

  std::vector<transport::Endpoint> servers{silent_ep};
  for (const auto& ep : cluster.endpoints()) servers.push_back(ep);
  node::ClientOptions options;
  options.attempt_timeout_ms = 100;
  obs::MetricsRegistry client_metrics;
  node::ClientSession client(servers, &client_metrics, options);
  ASSERT_TRUE(client.connect());  // lands on the silent listener

  const auto reply = client.call(42);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->ok);
  EXPECT_GE(client_metrics.counter_value("client.failovers"), 1u);
  // The recorded RTT must include the >= 100 ms spent on the dead attempt.
  const auto rtt = client_metrics.log_histogram_snapshot("client.rtt_us");
  ASSERT_EQ(rtt.count, 1u);
  EXPECT_GE(rtt.min, 100'000.0) << "retry reset the RTT clock";
  const auto failover_rtt = client_metrics.log_histogram_snapshot("client.failover_rtt_us");
  EXPECT_EQ(failover_rtt.count, 1u);
  ::close(silent_fd);
  cluster.stop();
}

// ---- PR 6: the flight recorder end to end over real sockets --------------

class TempDir {
 public:
  TempDir() {
    std::string tmpl = (std::filesystem::temp_directory_path() / "twostep-trace-XXXXXX").string();
    dir_ = ::mkdtemp(tmpl.data());
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  [[nodiscard]] const std::string& path() const noexcept { return dir_; }

 private:
  std::string dir_;
};

TEST(LiveRuntime, BatchedPipelinedGroupCommitClusterServesOpenLoopLoad) {
  // The N3 saturation stack end to end on real sockets: command batching,
  // slot pipelining and group-commit WAL all on, driven by the open-loop
  // generator.  Every offered command must be answered (no losses, no
  // rejections), every acked payload must be applied, and all replicas
  // must agree on the applied sequence.
  const consensus::SystemConfig config(3, 1, 1);
  TempDir tmp;
  node::ClusterOptions cluster_options;
  cluster_options.storage.dir = tmp.path();
  cluster_options.storage.fsync = false;  // discipline under test, not the device
  cluster_options.storage.group_commit_us = 200;
  node::LocalCluster<rsm::RsmProcess> cluster(
      config.n,
      [&](consensus::Env<rsm::Msg>& env, obs::MetricsRegistry& reg, consensus::ProcessId) {
        rsm::Options options;
        options.delta = kLiveDeltaUs;
        options.leader_of = [] { return consensus::ProcessId{0}; };
        options.probe.metrics = &reg;
        options.batch_max = 16;
        options.batch_linger = 200;
        options.pipeline_window = 16;
        options.batch_fill = &reg.log_histogram("rsm.batch_fill");
        return std::make_unique<rsm::RsmProcess>(env, config, options);
      },
      cluster_options);
  ASSERT_TRUE(cluster.wait_for_mesh());

  node::LoadgenOptions gen_options;
  gen_options.rate = 2'000;
  gen_options.sessions = 64;
  gen_options.connections = 4;
  gen_options.duration_ms = 1'000;
  gen_options.drain_ms = 5'000;
  node::OpenLoopLoadgen gen(cluster.endpoints(), gen_options);
  const node::LoadResult result = gen.run();
  EXPECT_GT(result.ok, 0);
  EXPECT_EQ(result.rejected, 0);
  EXPECT_EQ(result.lost, 0) << "commands unanswered after the drain";

  // Every replica applies the identical expanded command sequence...
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  for (;;) {
    bool all = true;
    for (int p = 0; p < config.n; ++p)
      if (cluster.node(p).applied_log().size() <
          static_cast<std::size_t>(result.ok)) all = false;
    if (all) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto log0 = cluster.node(0).applied_log();
  for (int p = 1; p < config.n; ++p) EXPECT_EQ(cluster.node(p).applied_log(), log0);

  // ...containing every acked payload exactly once.
  std::set<std::int64_t> applied_payloads;
  for (const auto& [slot, cmd] : log0)
    applied_payloads.insert(rsm::RsmProcess::command_payload(cmd));
  EXPECT_EQ(applied_payloads.size(), log0.size()) << "duplicate commands applied";
  for (const std::int64_t payload : gen.acked_payloads())
    ASSERT_TRUE(applied_payloads.contains(payload)) << "acked payload " << payload << " missing";
  cluster.stop();

  // The stack actually engaged: multi-command batches and amortized syncs.
  obs::MetricsRegistry merged = cluster.merged_metrics();
  EXPECT_GT(merged.log_histogram_snapshot("rsm.batch_fill").max, 1.0)
      << "no batch ever held more than one command";
  EXPECT_GT(merged.counter_value("wal.barriers"), 0u);
}

TEST(LiveTrace, OneClientCommandYieldsACausallyLinkedTreeAcrossProcesses) {
  // The tentpole acceptance criterion: a single traced client command on a
  // storage-backed 3-replica cluster produces spans from >= 3 processes,
  // every span's parent resolves inside the trace, and a WAL-fsync span is
  // among them.
  const consensus::SystemConfig config(3, 1, 1);
  TempDir tmp;
  node::ClusterOptions cluster_options;
  cluster_options.trace = true;
  cluster_options.storage.dir = tmp.path();
  cluster_options.storage.fsync = false;  // throwaway data; the span, not the device
  node::LocalCluster<rsm::RsmProcess> cluster(
      config.n,
      [&](consensus::Env<rsm::Msg>& env, obs::MetricsRegistry& reg, consensus::ProcessId) {
        rsm::Options options;
        options.delta = kLiveDeltaUs;
        options.leader_of = [] { return consensus::ProcessId{0}; };
        options.probe.metrics = &reg;
        return std::make_unique<rsm::RsmProcess>(env, config, options);
      },
      cluster_options);
  ASSERT_TRUE(cluster.wait_for_mesh());

  obs::FlightRecorder client_flight("client", 1000);
  node::ClientOptions client_options;
  client_options.flight = &client_flight;
  node::ClientSession client(cluster.endpoints()[0], nullptr, client_options);
  ASSERT_TRUE(client.connect());
  const auto reply = client.call(7);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->ok);
  cluster.stop();  // joins every loop thread: all spans are recorded

  const auto client_spans = client_flight.spans();
  ASSERT_EQ(client_spans.size(), 1u);
  const obs::SpanRecord root = client_spans.front();
  EXPECT_STREQ(root.name, "client.call");
  EXPECT_EQ(root.parent_span, 0u);
  ASSERT_NE(root.trace_id, 0u);

  // Pool every span of this trace, tagged with its process.
  std::vector<std::pair<std::string, obs::SpanRecord>> spans = {{"client", root}};
  for (int p = 0; p < config.n; ++p) {
    obs::FlightRecorder* rec = cluster.flight(p);
    ASSERT_NE(rec, nullptr);
    for (const obs::SpanRecord& s : rec->spans())
      if (s.trace_id == root.trace_id) spans.emplace_back("node-" + std::to_string(p), s);
  }

  std::set<std::string> processes;
  std::set<std::uint64_t> ids;
  bool saw_fsync = false, saw_child_of_root = false;
  for (const auto& [process, s] : spans) {
    processes.insert(process);
    ids.insert(s.span_id);
    if (std::strcmp(s.name, "wal.fsync") == 0) saw_fsync = true;
    if (s.parent_span == root.span_id) saw_child_of_root = true;
  }
  EXPECT_GE(processes.size(), 3u) << "spans from too few processes";
  EXPECT_TRUE(saw_fsync);
  EXPECT_TRUE(saw_child_of_root) << "no server span hangs off the client's root";
  // Causal linkage: every non-root parent resolves to a recorded span.
  for (const auto& [process, s] : spans) {
    if (s.parent_span == 0) continue;
    EXPECT_TRUE(ids.contains(s.parent_span))
        << process << "/" << s.name << " has a dangling parent";
  }
}

TEST(LiveStats, StatsRequestFrameScrapesARunningNode) {
  // `twostep stats` in miniature: a bare kStatsRequest (no Hello handshake)
  // against any replica returns its metrics snapshot as JSON.
  const consensus::SystemConfig config(3, 1, 1);
  node::LocalCluster<rsm::RsmProcess> cluster(
      config.n,
      [&](consensus::Env<rsm::Msg>& env, obs::MetricsRegistry& reg, consensus::ProcessId) {
        rsm::Options options;
        options.delta = kLiveDeltaUs;
        options.leader_of = [] { return consensus::ProcessId{0}; };
        options.probe.metrics = &reg;
        return std::make_unique<rsm::RsmProcess>(env, config, options);
      });
  ASSERT_TRUE(cluster.wait_for_mesh());

  const transport::Endpoint& target = cluster.endpoints()[1];
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(target.port);
  ASSERT_EQ(::inet_pton(AF_INET, target.host.c_str(), &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  const auto frame = transport::make_frame(transport::FrameKind::kStatsRequest,
                                           codec::encode(codec::StatsRequest{42}));
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), 0), static_cast<ssize_t>(frame.size()));

  transport::FrameParser parser;
  std::optional<codec::StatsReply> reply;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!reply && std::chrono::steady_clock::now() < deadline) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 100) <= 0) continue;
    std::uint8_t buf[4096];
    const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(got, 0) << "node closed the connection";
    ASSERT_TRUE(parser.feed({buf, static_cast<std::size_t>(got)})) << parser.error();
    while (auto f = parser.next()) {
      ASSERT_EQ(f->kind, transport::FrameKind::kStatsReply);
      reply = codec::decode_stats_reply(f->payload);
      ASSERT_TRUE(reply.has_value()) << "malformed stats reply payload";
    }
  }
  ::close(fd);
  ASSERT_TRUE(reply.has_value()) << "no stats reply within the deadline";
  EXPECT_EQ(reply->id, 42);
  EXPECT_NE(reply->json.find("\"schema\":\"twostep-stats/1\""), std::string::npos)
      << reply->json;
  EXPECT_NE(reply->json.find("\"node\":1"), std::string::npos) << reply->json;
  EXPECT_NE(reply->json.find("\"metrics\""), std::string::npos) << reply->json;
  cluster.stop();
}

// ---- live membership reconfiguration + leader failover -------------------

node::LocalCluster<rsm::RsmProcess>::Factory rsm_factory(const consensus::SystemConfig& config) {
  return [config](consensus::Env<rsm::Msg>& env, obs::MetricsRegistry& reg,
                  consensus::ProcessId) {
    rsm::Options options;
    options.delta = kLiveDeltaUs;
    options.leader_of = [] { return consensus::ProcessId{0}; };
    options.probe.metrics = &reg;
    return std::make_unique<rsm::RsmProcess>(env, config, options);
  };
}

/// Polls until `pred` holds or `ms` elapses; returns whether it held.
template <typename Pred>
bool eventually(Pred&& pred, std::int64_t ms = 15'000) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

/// Slot-aligned pairwise agreement: the overlap of two applied logs (a
/// joiner's starts at its snapshot floor) must match entry for entry.
bool logs_agree(const std::vector<std::pair<std::int32_t, std::int64_t>>& a,
                const std::vector<std::pair<std::int32_t, std::int64_t>>& b) {
  if (a.empty() || b.empty()) return true;
  std::size_t i = 0, j = 0;
  if (a.front().first < b.front().first)
    while (i < a.size() && a[i].first < b.front().first) ++i;
  else
    while (j < b.size() && b[j].first < a.front().first) ++j;
  const std::size_t m = std::min(a.size() - i, b.size() - j);
  for (std::size_t k = 0; k < m; ++k)
    if (a[i + k] != b[j + k]) return false;
  return true;
}

TEST(LiveReconfig, AddAndRemoveReplicaConvergeAcrossTheCluster) {
  // The tentpole conformance check: a joiner admitted through the config
  // log heals from snapshot state transfer and tracks the live log; a
  // removed founder is retired without an availability cliff; every live
  // member ends at the same config version with slot-aligned agreement.
  const consensus::SystemConfig config(3, 1, 1);
  TempDir tmp;
  node::ClusterOptions cluster_options;
  cluster_options.storage.dir = tmp.path();
  cluster_options.storage.fsync = false;
  cluster_options.storage.snapshot_every = 32;  // the joiner heals by transfer
  node::LocalCluster<rsm::RsmProcess> cluster(config.n, rsm_factory(config), cluster_options);
  ASSERT_TRUE(cluster.wait_for_mesh());

  node::ClientSession client(cluster.endpoints()[0], nullptr);
  ASSERT_TRUE(client.connect());
  for (std::int64_t i = 0; i < 50; ++i) {
    const auto reply = client.call(i);
    ASSERT_TRUE(reply.has_value() && reply->ok) << "i=" << i;
  }

  const int joiner = cluster.add_replica();
  ASSERT_EQ(joiner, 3);
  ASSERT_TRUE(cluster.wait_for_mesh(10'000));  // join reached every member
  for (std::int64_t i = 50; i < 100; ++i) {
    const auto reply = client.call(i);
    ASSERT_TRUE(reply.has_value() && reply->ok) << "i=" << i;
  }
  EXPECT_TRUE(eventually([&] { return cluster.node(joiner).config_version() == 1; }));

  ASSERT_TRUE(cluster.remove_replica(2));
  EXPECT_TRUE(cluster.removed(2));
  EXPECT_TRUE(eventually([&] { return cluster.node(0).config_version() == 2; }));
  for (std::int64_t i = 100; i < 120; ++i) {
    const auto reply = client.call(i);
    ASSERT_TRUE(reply.has_value() && reply->ok) << "i=" << i;
  }

  // The joiner catches up to the founders' applied head, and the overlaps
  // agree slot for slot (its log starts at the snapshot floor).
  ASSERT_TRUE(eventually([&] {
    const auto head = [&](int p) {
      const auto log = cluster.node(p).applied_log();
      return log.empty() ? -1 : log.back().first;
    };
    return head(joiner) >= std::max(head(0), head(1)) && head(0) == head(1);
  }));
  const auto log0 = cluster.node(0).applied_log();
  EXPECT_TRUE(logs_agree(log0, cluster.node(1).applied_log()));
  EXPECT_TRUE(logs_agree(log0, cluster.node(joiner).applied_log()));
  for (int p : {0, 1, joiner}) EXPECT_EQ(cluster.node(p).config_version(), 2) << "p" << p;
  cluster.stop();
}

TEST(LiveFailover, DeadLeaderIsSuspectedAndLeadershipMoves) {
  // Kill the Ω leader outright: with the failure detector armed the
  // survivors must suspect it within a bounded number of jittered
  // timeouts, agree on the next leader, and keep serving commands.
  const consensus::SystemConfig config(3, 1, 1);
  node::ClusterOptions cluster_options;
  cluster_options.failover.enabled = true;
  cluster_options.failover.period_us = 10'000;
  cluster_options.failover.timeout_min_us = 80'000;
  cluster_options.failover.timeout_max_us = 800'000;
  node::LocalCluster<rsm::RsmProcess> cluster(config.n, rsm_factory(config), cluster_options);
  ASSERT_TRUE(cluster.wait_for_mesh());
  for (int p = 0; p < config.n; ++p) EXPECT_EQ(cluster.node(p).leader(), 0) << "p" << p;

  cluster.kill(0);
  EXPECT_TRUE(eventually(
      [&] { return cluster.node(1).leader() != 0 && cluster.node(2).leader() != 0; }))
      << "survivors never moved off the dead leader";
  EXPECT_EQ(cluster.node(1).leader(), cluster.node(2).leader());

  // The cluster still commits with the leader dead (client fails over).
  node::ClientOptions client_options;
  client_options.attempt_timeout_ms = 500;
  node::ClientSession client(
      {cluster.endpoints()[1], cluster.endpoints()[2]}, nullptr, client_options);
  ASSERT_TRUE(client.connect());
  const auto reply = client.call(4242);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->ok);

  // The restarted leader rejoins the detector's view and is unsuspected.
  cluster.restart(0);
  EXPECT_TRUE(eventually([&] { return cluster.node(0).leader() == cluster.node(1).leader(); }));
  cluster.stop();
}

TEST(LiveReconfig, JoinWhileAFounderIsDownStillHeals) {
  // The chaossoak pin: admit a joiner while one founder is crashed.  The
  // remaining majority decides the add; the crashed founder recovers from
  // its WAL, learns the new config it slept through, and everyone
  // converges to the same version and slot-aligned logs.
  const consensus::SystemConfig config(3, 1, 1);
  TempDir tmp;
  node::ClusterOptions cluster_options;
  cluster_options.storage.dir = tmp.path();
  cluster_options.storage.fsync = false;
  cluster_options.storage.snapshot_every = 32;
  cluster_options.failover.enabled = true;
  cluster_options.failover.period_us = 10'000;
  cluster_options.failover.timeout_min_us = 80'000;
  cluster_options.failover.timeout_max_us = 800'000;
  node::LocalCluster<rsm::RsmProcess> cluster(config.n, rsm_factory(config), cluster_options);
  ASSERT_TRUE(cluster.wait_for_mesh());

  node::ClientSession client(cluster.endpoints()[1], nullptr);
  ASSERT_TRUE(client.connect());
  for (std::int64_t i = 0; i < 40; ++i) {
    const auto reply = client.call(i);
    ASSERT_TRUE(reply.has_value() && reply->ok) << "i=" << i;
  }

  cluster.kill(2);
  const int joiner = cluster.add_replica();
  ASSERT_EQ(joiner, 3);
  for (std::int64_t i = 40; i < 80; ++i) {
    const auto reply = client.call(i);
    ASSERT_TRUE(reply.has_value() && reply->ok) << "i=" << i;
  }
  EXPECT_TRUE(eventually([&] { return cluster.node(joiner).config_version() == 1; }))
      << "joiner never adopted the config it was admitted under";

  cluster.restart(2);
  ASSERT_TRUE(eventually([&] {
    for (int p = 0; p < 4; ++p)
      if (cluster.node(p).config_version() != 1) return false;
    return true;
  })) << "the recovered founder never learned the join it slept through";

  ASSERT_TRUE(eventually([&] {
    const auto head = [&](int p) {
      const auto log = cluster.node(p).applied_log();
      return log.empty() ? -1 : log.back().first;
    };
    const auto h0 = head(0);
    return h0 >= 0 && head(1) == h0 && head(2) == h0 && head(joiner) >= h0;
  }));
  const auto log0 = cluster.node(0).applied_log();
  for (int p = 1; p <= joiner; ++p)
    EXPECT_TRUE(logs_agree(log0, cluster.node(p).applied_log())) << "p" << p;
  cluster.stop();
}

TEST(LiveCatchup, PeriodicGossipHealsAHolePunchedByFrameLoss) {
  // The one failure shape reconnect anti-entropy cannot reach: Decides to
  // a replica are dropped by the network while its TCP connections stay
  // up (no reconnect, so no resend) and nothing checkpoints afterwards
  // (no fresh snapshot offer).  Blackhole both inbound directions to
  // replica 2 for a window, commit through the {0, 1} quorum inside it,
  // and let the window heal with no further traffic: only the periodic
  // applied-prefix gossip can close the hole.
  const consensus::SystemConfig config(3, 1, 1);
  node::ClusterOptions cluster_options;
  cluster_options.anti_entropy_period_us = 150'000;
  cluster_options.chaos.blackholes = {{0, 2, 1'000'000, 4'000'000},
                                      {1, 2, 1'000'000, 4'000'000}};
  const auto t0 = std::chrono::steady_clock::now();
  node::LocalCluster<rsm::RsmProcess> cluster(config.n, rsm_factory(config), cluster_options);
  ASSERT_TRUE(cluster.wait_for_mesh());  // hellos pass before the window opens

  // Land every command inside the blackhole window (loop clocks start at
  // node construction, within milliseconds of t0).
  std::this_thread::sleep_until(t0 + std::chrono::milliseconds(1'300));
  node::ClientSession client(cluster.endpoints()[0], nullptr);
  ASSERT_TRUE(client.connect());
  for (std::int64_t i = 0; i < 40; ++i) {
    const auto reply = client.call(i);
    ASSERT_TRUE(reply.has_value() && reply->ok) << "i=" << i;
  }
  // Still inside the window: the victim must have missed at least part of
  // the run (this is what makes the heal below meaningful).
  const auto head = [&](int p) {
    const auto log = cluster.node(p).applied_log();
    return log.empty() ? -1 : log.back().first;
  };
  EXPECT_LT(head(2), head(0));

  // No more client traffic, no crash, no reconnect — convergence can only
  // come from the catch-up gossip answered after the window heals.
  ASSERT_TRUE(eventually([&] {
    const auto h0 = head(0);
    return h0 >= 39 && head(1) == h0 && head(2) == h0;
  })) << "the blackholed replica never healed without a reconnect";
  const auto log0 = cluster.node(0).applied_log();
  EXPECT_TRUE(logs_agree(log0, cluster.node(1).applied_log()));
  EXPECT_TRUE(logs_agree(log0, cluster.node(2).applied_log()));
  cluster.stop();
}

}  // namespace
}  // namespace twostep
