// Live-vs-simulated conformance for node::Runtime.
//
// The table-driven suite runs the same seeded proposal schedule twice —
// once through harness::RunSpec (discrete-event simulator) and once on a
// real loopback TCP cluster — and asserts the worlds agree.  Rows whose
// outcome is schedule-independent (lone proposer, unanimous proposals)
// must produce *identical* decisions; racy rows (distinct values arriving
// in wall-clock order) must satisfy agreement + validity in both worlds.
//
// Everything here also runs under TSan in CI: it is the check that the
// runtime's threading discipline (loop-thread-only protocol access,
// mutex-guarded snapshots) actually holds.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "consensus/types.hpp"
#include "core/two_step.hpp"
#include "harness/run_spec.hpp"
#include "node/client.hpp"
#include "node/local_cluster.hpp"
#include "node/runtime.hpp"
#include "rsm/rsm.hpp"

namespace twostep {
namespace {

using consensus::Value;

/// Live clusters run with a generous Δ so the fast path has comfortably
/// more than one round-trip of slack before a slow ballot could start.
constexpr sim::Tick kLiveDeltaUs = 100'000;  // 100 ms

struct Proposal {
  consensus::ProcessId p;
  std::int64_t v;
};

std::vector<std::int64_t> run_sim_core(consensus::SystemConfig config, core::Mode mode,
                                       const std::vector<Proposal>& proposals) {
  auto runner = harness::RunSpec(config).delta(100).seed(1).core(mode);
  consensus::SyncScenario scenario;
  for (const Proposal& prop : proposals) scenario.proposals.push_back({prop.p, Value{prop.v}});
  runner->run(scenario);
  std::vector<std::int64_t> decided;
  for (consensus::ProcessId p = 0; p < config.n; ++p)
    decided.push_back(runner->cluster().process(p).decided_value().get());
  return decided;
}

std::vector<std::int64_t> run_live_core(consensus::SystemConfig config, core::Mode mode,
                                        const std::vector<Proposal>& proposals) {
  node::LocalCluster<core::TwoStepProcess> cluster(
      config.n, [&](consensus::Env<core::Message>& env, obs::MetricsRegistry& reg,
                    consensus::ProcessId /*self*/) {
        core::Options options;
        options.mode = mode;
        options.delta = kLiveDeltaUs;
        options.leader_of = [] { return consensus::ProcessId{0}; };  // Ω, no crashes
        options.probe.metrics = &reg;
        return std::make_unique<core::TwoStepProcess>(env, config, options);
      });
  EXPECT_TRUE(cluster.wait_for_mesh());
  for (const Proposal& prop : proposals) cluster.node(prop.p).propose(Value{prop.v});

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  for (;;) {
    bool all = true;
    for (int p = 0; p < config.n; ++p)
      if (!cluster.node(p).has_decided()) all = false;
    if (all) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      ADD_FAILURE() << "live cluster did not decide in time";
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::vector<std::int64_t> decided;
  for (int p = 0; p < config.n; ++p) {
    const Value v = cluster.node(p).decided_value();
    decided.push_back(v.is_bottom() ? -1 : v.get());
  }
  cluster.stop();
  return decided;
}

struct ConformanceRow {
  const char* name;
  consensus::SystemConfig config;
  core::Mode mode;
  std::vector<Proposal> proposals;
  /// Exact live == sim equality (schedule-independent outcome) vs
  /// agreement + validity in each world separately.
  bool deterministic;
};

std::vector<ConformanceRow> conformance_rows() {
  return {
      {"task_lone_proposer_n4", consensus::SystemConfig(4, 1, 1), core::Mode::kTask,
       {{0, 7}}, true},
      {"object_lone_proposer_n3", consensus::SystemConfig(3, 1, 1), core::Mode::kObject,
       {{0, 11}}, true},
      {"task_unanimous_n5", consensus::SystemConfig(5, 2, 1), core::Mode::kTask,
       {{0, 42}, {1, 42}, {2, 42}, {3, 42}, {4, 42}}, true},
      {"object_unanimous_n3", consensus::SystemConfig(3, 1, 1), core::Mode::kObject,
       {{0, 5}, {1, 5}, {2, 5}}, true},
      {"task_conflicting_n4", consensus::SystemConfig(4, 1, 1), core::Mode::kTask,
       {{0, 1}, {1, 2}, {2, 3}, {3, 4}}, false},
      {"object_conflicting_n5", consensus::SystemConfig(5, 1, 1), core::Mode::kObject,
       {{0, 9}, {2, 8}}, false},
  };
}

TEST(LiveConformance, LiveAndSimulatedEnvsAgreeOnTheSameSchedule) {
  for (const ConformanceRow& row : conformance_rows()) {
    SCOPED_TRACE(row.name);
    const auto sim_decided = run_sim_core(row.config, row.mode, row.proposals);
    const auto live_decided = run_live_core(row.config, row.mode, row.proposals);
    ASSERT_EQ(sim_decided.size(), live_decided.size());

    std::set<std::int64_t> proposed;
    for (const Proposal& prop : row.proposals) proposed.insert(prop.v);

    // Agreement + validity hold in both worlds, always.
    for (std::size_t p = 1; p < sim_decided.size(); ++p) {
      EXPECT_EQ(sim_decided[p], sim_decided[0]);
      EXPECT_EQ(live_decided[p], live_decided[0]);
    }
    EXPECT_TRUE(proposed.contains(sim_decided[0]));
    EXPECT_TRUE(proposed.contains(live_decided[0]));

    // Schedule-independent rows: the two worlds decide identically.
    if (row.deterministic) {
      EXPECT_EQ(live_decided, sim_decided);
    }
  }
}

TEST(LiveConformance, FastPathSurvivesTheRealNetwork) {
  // Unanimous proposals on a 5-replica loopback cluster must produce at
  // least one genuine fast (two-step) decision — the acceptance criterion
  // that the paper's fast path is observable over real sockets, not just
  // under the simulator's lockstep rounds.
  const consensus::SystemConfig config(5, 1, 1);
  node::LocalCluster<core::TwoStepProcess> cluster(
      config.n, [&](consensus::Env<core::Message>& env, obs::MetricsRegistry& reg,
                    consensus::ProcessId) {
        core::Options options;
        options.mode = core::Mode::kTask;
        options.delta = kLiveDeltaUs;
        options.leader_of = [] { return consensus::ProcessId{0}; };
        options.probe.metrics = &reg;
        return std::make_unique<core::TwoStepProcess>(env, config, options);
      });
  ASSERT_TRUE(cluster.wait_for_mesh());
  for (int p = 0; p < config.n; ++p) cluster.node(p).propose(Value{99});

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  for (;;) {
    bool all = true;
    for (int p = 0; p < config.n; ++p)
      if (!cluster.node(p).has_decided()) all = false;
    if (all) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  cluster.stop();

  obs::MetricsRegistry merged = cluster.merged_metrics();
  EXPECT_GE(merged.counter_value("decisions.fast"), 1u);
  EXPECT_EQ(merged.counter_value("decisions.fast") + merged.counter_value("decisions.slow") +
                merged.counter_value("decisions.learned"),
            static_cast<std::uint64_t>(config.n));
  // The mesh sent real bytes.
  EXPECT_GT(merged.counter_value("transport.bytes_sent"), 0u);
}

TEST(LiveConformance, RsmAppliedLogMatchesSimulatorForSameCommandSequence) {
  const consensus::SystemConfig config(3, 1, 1);
  const std::vector<std::int64_t> payloads = {5, 17, 3, 29, 11, 2, 23, 8};

  // Simulated: replica 0 submits the same payloads at t=0, in order.
  auto runner = harness::RunSpec(config).delta(100).seed(1).rsm();
  consensus::SyncScenario scenario;
  for (const std::int64_t payload : payloads) scenario.proposals.push_back({0, Value{payload}});
  runner->run(scenario);
  std::vector<std::pair<std::int32_t, std::int64_t>> sim_log;
  auto& sim_proc = runner->cluster().process(0);
  for (std::int32_t slot = 0; slot < sim_proc.applied_prefix(); ++slot)
    sim_log.emplace_back(slot, *sim_proc.decision(slot));

  // Live: a closed-loop client drives replica 0 (its proxy) with the same
  // sequence over a real socket.
  node::LocalCluster<rsm::RsmProcess> cluster(
      config.n, [&](consensus::Env<rsm::SlotMsg>& env, obs::MetricsRegistry& reg,
                    consensus::ProcessId) {
        rsm::Options options;
        options.delta = kLiveDeltaUs;
        options.leader_of = [] { return consensus::ProcessId{0}; };
        options.probe.metrics = &reg;
        return std::make_unique<rsm::RsmProcess>(env, config, options);
      });
  ASSERT_TRUE(cluster.wait_for_mesh());

  obs::MetricsRegistry client_metrics;
  node::ClientSession client(cluster.endpoints()[0], &client_metrics);
  ASSERT_TRUE(client.connect());
  for (const std::int64_t payload : payloads) {
    const auto reply = client.call(payload);
    ASSERT_TRUE(reply.has_value()) << "command " << payload << " got no reply";
    EXPECT_TRUE(reply->ok);
    EXPECT_EQ(rsm::RsmProcess::command_payload(reply->value), payload);
  }

  // Wait for every replica to apply the full log.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  for (;;) {
    bool all = true;
    for (int p = 0; p < config.n; ++p)
      if (cluster.node(p).applied_log().size() < payloads.size()) all = false;
    if (all) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto live_log0 = cluster.node(0).applied_log();
  // All replicas applied the same log (the RSM safety property)...
  for (int p = 1; p < config.n; ++p) EXPECT_EQ(cluster.node(p).applied_log(), live_log0);
  cluster.stop();

  // ...and it is exactly the simulator's log: a sequential proxy yields a
  // deterministic slot assignment, and commands pack (proxy 0, local id)
  // identically in both worlds.
  EXPECT_EQ(live_log0, sim_log);

  // Per-request latency was captured.
  EXPECT_EQ(client_metrics.counter_value("client.requests"), payloads.size());
  EXPECT_EQ(client_metrics.histograms().at("client.rtt_us").count(), payloads.size());
}

TEST(LiveRuntime, SingleShotClientGetsTheDecidedValue) {
  const consensus::SystemConfig config(3, 1, 1);
  node::LocalCluster<core::TwoStepProcess> cluster(
      config.n, [&](consensus::Env<core::Message>& env, obs::MetricsRegistry& reg,
                    consensus::ProcessId) {
        core::Options options;
        options.mode = core::Mode::kObject;
        options.delta = kLiveDeltaUs;
        options.leader_of = [] { return consensus::ProcessId{0}; };
        options.probe.metrics = &reg;
        return std::make_unique<core::TwoStepProcess>(env, config, options);
      });
  ASSERT_TRUE(cluster.wait_for_mesh());

  node::ClientSession client(cluster.endpoints()[0], nullptr);
  ASSERT_TRUE(client.connect());
  const auto reply = client.call(1234);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->ok);
  EXPECT_EQ(reply->value, 1234);
  EXPECT_EQ(reply->slot, -1);

  // A second request against the decided instance answers immediately with
  // the same value, whatever payload it carries.
  const auto second = client.call(777);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->value, 1234);
  cluster.stop();
}

TEST(LiveRuntime, RejectsRsmPayloadOutsideCommandRange) {
  const consensus::SystemConfig config(3, 1, 1);
  node::LocalCluster<rsm::RsmProcess> cluster(
      config.n, [&](consensus::Env<rsm::SlotMsg>& env, obs::MetricsRegistry& reg,
                    consensus::ProcessId) {
        rsm::Options options;
        options.delta = kLiveDeltaUs;
        options.leader_of = [] { return consensus::ProcessId{0}; };
        options.probe.metrics = &reg;
        return std::make_unique<rsm::RsmProcess>(env, config, options);
      });
  ASSERT_TRUE(cluster.wait_for_mesh());
  node::ClientSession client(cluster.endpoints()[1], nullptr);
  ASSERT_TRUE(client.connect());
  const auto reply = client.call(std::int64_t{1} << 41);  // outside the 40-bit range
  ASSERT_TRUE(reply.has_value());
  EXPECT_FALSE(reply->ok);
  cluster.stop();
}

}  // namespace
}  // namespace twostep
