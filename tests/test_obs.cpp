// Tests for the observability subsystem: RunTracer ring semantics, probe
// short-circuiting, MetricsRegistry counter/histogram behaviour, exporter
// well-formedness (validated with a small JSON parser below), and an
// end-to-end fast-path run of the paper's protocol with a probe attached.
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "consensus/scenario.hpp"
#include "harness/run_spec.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace twostep::obs {
namespace {

using consensus::Value;

// ---- minimal JSON validator (no JSON library in the toolchain) ----
//
// Recursive-descent recognizer for RFC 8259 JSON; returns true iff the whole
// string is one valid JSON value.  Enough to assert the exporters emit
// parseable output without pulling in a dependency.

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_])))
              return false;
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    return pos_ > start;
  }

  bool literal(const char* word) {
    for (const char* c = word; *c; ++c) {
      if (pos_ >= s_.size() || s_[pos_] != *c) return false;
      ++pos_;
    }
    return true;
  }

  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r'))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

bool is_valid_json(const std::string& text) { return JsonValidator(text).valid(); }

TraceEvent event_at(sim::Tick t, EventKind kind = EventKind::kTimerFire) {
  TraceEvent e;
  e.kind = kind;
  e.at = t;
  e.process = 0;
  return e;
}

// ---- RunTracer ----

TEST(RunTracer, RetainsEventsInOrder) {
  RunTracer tracer(8);
  for (int i = 0; i < 5; ++i) tracer.record(event_at(i));
  EXPECT_EQ(tracer.size(), 5u);
  EXPECT_EQ(tracer.recorded(), 5u);
  EXPECT_EQ(tracer.evicted(), 0u);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(events[static_cast<std::size_t>(i)].at, i);
}

TEST(RunTracer, RingEvictsOldestBeyondCapacity) {
  RunTracer tracer(4);
  for (int i = 0; i < 10; ++i) tracer.record(event_at(i));
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.capacity(), 4u);
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.evicted(), 6u);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  // The newest 4, still chronological.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(events[static_cast<std::size_t>(i)].at, 6 + i);
}

TEST(RunTracer, ClearEmptiesTheRing) {
  RunTracer tracer(4);
  tracer.record(event_at(1));
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_TRUE(tracer.events().empty());
}

class CollectingSink : public TraceSink {
 public:
  void on_event(const TraceEvent& event) override { seen.push_back(event); }
  std::vector<TraceEvent> seen;
};

TEST(RunTracer, SinkSeesEveryEventIncludingEvicted) {
  RunTracer tracer(2);
  CollectingSink sink;
  tracer.set_sink(&sink);
  for (int i = 0; i < 7; ++i) tracer.record(event_at(i));
  ASSERT_EQ(sink.seen.size(), 7u);  // ring kept only 2, the sink got all 7
  for (int i = 0; i < 7; ++i) EXPECT_EQ(sink.seen[static_cast<std::size_t>(i)].at, i);
}

// ---- Probe ----

TEST(Probe, NullProbeNeverInvokesTheEventBuilder) {
  Probe probe;  // both pointers null
  EXPECT_FALSE(probe.enabled());
  int builds = 0;
  probe.trace([&] {
    ++builds;
    return TraceEvent{};
  });
  // The zero-overhead contract: with no tracer installed the build lambda —
  // and hence any formatting/allocation inside it — must not run.
  EXPECT_EQ(builds, 0);
}

TEST(Probe, MetricsOnlyProbeStillSkipsTraceBuilders) {
  MetricsRegistry registry;
  Probe probe{nullptr, &registry};
  EXPECT_TRUE(probe.enabled());
  EXPECT_FALSE(probe.tracing());
  int builds = 0;
  probe.trace([&] {
    ++builds;
    return TraceEvent{};
  });
  EXPECT_EQ(builds, 0);
}

TEST(Probe, TracingProbeRecordsBuiltEvents) {
  RunTracer tracer;
  Probe probe{&tracer, nullptr};
  probe.trace([] { return TraceEvent{.kind = EventKind::kCrash, .at = 5, .process = 2}; });
  ASSERT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.events()[0].kind, EventKind::kCrash);
  EXPECT_EQ(tracer.events()[0].process, 2);
}

// ---- message_label fallback ----

struct PlainPayload {
  int x = 0;
};

TEST(MessageLabel, FallsBackForUnnamedTypes) {
  EXPECT_STREQ(message_label(PlainPayload{}), "msg");
  EXPECT_STREQ(message_label(core::Message{core::ProposeMsg{Value{1}}}), "Propose");
  EXPECT_STREQ(message_label(core::Message{core::OneBMsg{}}), "1B");
}

// ---- MetricsRegistry ----

TEST(MetricsRegistry, CountersStartAtZeroAndAccumulate) {
  MetricsRegistry registry;
  Counter& c = registry.counter("x");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(registry.counter_value("x"), 42u);
  EXPECT_EQ(registry.counter_value("never-registered"), 0u);
}

TEST(MetricsRegistry, CounterReferencesStayStableAcrossRegistrations) {
  MetricsRegistry registry;
  Counter& a = registry.counter("a");
  a.add();
  for (int i = 0; i < 100; ++i) registry.counter("other-" + std::to_string(i));
  a.add();  // must still point at live storage
  EXPECT_EQ(registry.counter_value("a"), 2u);
  EXPECT_EQ(&a, &registry.counter("a"));
}

TEST(MetricsRegistry, CounterCellWritesAreVisible) {
  MetricsRegistry registry;
  std::uint64_t* cell = registry.counter("raw").cell();
  *cell += 7;
  EXPECT_EQ(registry.counter_value("raw"), 7u);
}

TEST(MetricsRegistry, HistogramsRecordSamples) {
  MetricsRegistry registry;
  util::Summary& h = registry.histogram("lat");
  for (double x : {1.0, 2.0, 3.0, 4.0}) h.add(x);
  EXPECT_EQ(registry.histograms().at("lat").count(), 4u);
  EXPECT_DOUBLE_EQ(registry.histogram("lat").mean(), 2.5);
}

TEST(MetricsRegistry, ResetClearsEverything) {
  MetricsRegistry registry;
  registry.counter("c").add(3);
  registry.histogram("h").add(1.0);
  registry.reset();
  EXPECT_EQ(registry.counter_value("c"), 0u);
  EXPECT_EQ(registry.histogram("h").count(), 0u);
}

TEST(MetricsRegistry, JsonOutputIsWellFormed) {
  MetricsRegistry registry;
  registry.counter("net.sent.Propose").add(6);
  registry.counter("decisions.fast").add();
  registry.histogram("decision_latency").add(200.0);
  registry.histogram("decision_latency").add(300.0);
  const std::string json = registry.to_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"net.sent.Propose\": 6"), std::string::npos) << json;
  EXPECT_NE(json.find("decision_latency"), std::string::npos);
}

TEST(MetricsRegistry, EmptyRegistryJsonIsWellFormed) {
  MetricsRegistry registry;
  EXPECT_TRUE(is_valid_json(registry.to_json())) << registry.to_json();
}

TEST(MetricsRegistry, MergeAddsCountersAndHistograms) {
  // Per-task registries merged after a parallel join must aggregate to what
  // one sequential registry would have recorded.
  MetricsRegistry a, b;
  a.counter("shared").add(2);
  a.histogram("lat").add(1.0);
  b.counter("shared").add(5);
  b.counter("only_b").add(1);
  b.histogram("lat").add(3.0);
  b.histogram("only_b_lat").add(7.0);
  a.merge(b);
  EXPECT_EQ(a.counter_value("shared"), 7u);
  EXPECT_EQ(a.counter_value("only_b"), 1u);
  EXPECT_EQ(a.histogram("lat").count(), 2u);
  EXPECT_DOUBLE_EQ(a.histogram("lat").mean(), 2.0);
  EXPECT_EQ(a.histogram("only_b_lat").count(), 1u);
  a.merge(MetricsRegistry{});  // empty merge is a no-op
  EXPECT_EQ(a.counter_value("shared"), 7u);
}

// ---- exporters ----

RunTracer make_sample_trace() {
  RunTracer tracer;
  tracer.record({EventKind::kProposal, 0, 0, consensus::kNoProcess, -1, Value{100}, "", 0});
  tracer.record({EventKind::kMessageSend, 0, 0, 1, -1, {}, "Propose", 1});
  tracer.record({EventKind::kMessageDeliver, 100, 1, 0, -1, {}, "Propose", 1});
  tracer.record({EventKind::kBallotStart, 200, 1, consensus::kNoProcess, 4, {}, "", 0});
  tracer.record({EventKind::kSelectionVerdict, 300, 1, consensus::kNoProcess, 4, Value{100},
                 "own_initial", 0});
  tracer.record({EventKind::kBallotStart, 500, 1, consensus::kNoProcess, 7, {}, "", 0});
  tracer.record({EventKind::kDecision, 600, 1, consensus::kNoProcess, 7, Value{100}, "slow", 0});
  return tracer;
}

TEST(Export, JsonlEveryLineParses) {
  const RunTracer tracer = make_sample_trace();
  std::ostringstream os;
  write_jsonl(tracer, os);
  std::istringstream is(os.str());
  std::string line;
  int lines = 0;
  while (std::getline(is, line)) {
    ++lines;
    EXPECT_TRUE(is_valid_json(line)) << line;
  }
  EXPECT_EQ(lines, 7);
}

TEST(Export, ChromeTraceIsOneValidJsonObject) {
  const RunTracer tracer = make_sample_trace();
  std::ostringstream os;
  write_chrome_trace(tracer, os);
  const std::string json = os.str();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Ballot spans: ballot 4 opens with "B" and is closed (by ballot 7 or the
  // trace end), so both phase kinds must appear.
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
  // Process metadata names the tracks.
  EXPECT_NE(json.find("process_name"), std::string::npos);
}

TEST(Export, FormatEventIsHumanReadable) {
  TraceEvent e{EventKind::kDecision, 200, 2, consensus::kNoProcess, 0, Value{102}, "fast", 0};
  const std::string line = format_event(e);
  EXPECT_NE(line.find("t=200"), std::string::npos) << line;
  EXPECT_NE(line.find("p2"), std::string::npos);
  EXPECT_NE(line.find("decision"), std::string::npos);
  EXPECT_NE(line.find("fast"), std::string::npos);
  EXPECT_NE(line.find("102"), std::string::npos);
}

// ---- end-to-end: probe through a simulated run ----

TEST(ObsEndToEnd, FastPathRunEmitsExpectedEventsAndMetrics) {
  RunTracer tracer;
  MetricsRegistry metrics;
  const Probe probe{&tracer, &metrics};

  // Task mode at the bound n = 3 (e = 1, f = 1), failure-free, proposals
  // 100+p with p2's maximal value delivered first: p2 decides on the fast
  // path at 2Δ, everyone else learns.
  const consensus::SystemConfig cfg{3, 1, 1};
  auto runner = harness::RunSpec(cfg).delta(100).probe(probe).core(core::Mode::kTask);
  consensus::SyncScenario s;
  for (int p = 2; p >= 0; --p) s.proposals.push_back({p, Value{100 + p}});
  runner->run(s);
  ASSERT_TRUE(runner->monitor().safe());

  // Metrics: one fast decision (p2), two learned (p0, p1), no slow ones.
  EXPECT_EQ(metrics.counter_value("decisions.fast"), 1u);
  EXPECT_EQ(metrics.counter_value("decisions.learned"), 2u);
  EXPECT_EQ(metrics.counter_value("decisions.slow"), 0u);
  EXPECT_EQ(metrics.counter_value("proposals"), 3u);
  // Every proposer broadcasts Propose to the other two.
  EXPECT_EQ(metrics.counter_value("net.sent.Propose"), 6u);
  EXPECT_EQ(metrics.counter_value("net.sent.Decide"), 2u);
  EXPECT_GT(metrics.counter_value("sim.events"), 0u);
  EXPECT_EQ(metrics.histograms().at("decision_latency").count(), 3u);

  // Event stream: the first decision is p2's fast one, and a fast_vote
  // transition precedes it (someone voted for p2's proposal).
  const auto events = tracer.events();
  ASSERT_FALSE(events.empty());
  const TraceEvent* first_decision = nullptr;
  bool saw_fast_vote_before_decision = false;
  for (const auto& e : events) {
    if (!first_decision && e.kind == EventKind::kPhaseTransition &&
        std::string(e.label) == "fast_vote")
      saw_fast_vote_before_decision = true;
    if (e.kind == EventKind::kDecision && !first_decision) first_decision = &e;
  }
  ASSERT_NE(first_decision, nullptr);
  EXPECT_STREQ(first_decision->label, "fast");
  EXPECT_EQ(first_decision->process, 2);
  EXPECT_EQ(first_decision->value, Value{102});
  EXPECT_EQ(first_decision->at, 200);  // 2Δ
  EXPECT_TRUE(saw_fast_vote_before_decision);

  // Proposals are traced for every process.
  int proposals = 0;
  for (const auto& e : events)
    if (e.kind == EventKind::kProposal) ++proposals;
  EXPECT_EQ(proposals, 3);

  // Chronological ordering of the retained stream.
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LE(events[i - 1].at, events[i].at);

  // The whole run exports to valid JSON in both formats.
  std::ostringstream chrome;
  write_chrome_trace(tracer, chrome);
  EXPECT_TRUE(is_valid_json(chrome.str()));
  std::ostringstream jsonl;
  write_jsonl(tracer, jsonl);
  std::istringstream lines(jsonl.str());
  std::string line;
  while (std::getline(lines, line)) EXPECT_TRUE(is_valid_json(line)) << line;
}

TEST(ObsEndToEnd, SlowPathRunCountsBallotsAndSelectionBranches) {
  RunTracer tracer;
  MetricsRegistry metrics;
  const Probe probe{&tracer, &metrics};

  // Crash the would-be fast proposer's voters: with p0 crashed and only p0
  // proposing... instead: crash p2 and give only p0 a proposal in object
  // mode at n = 4 (e = 1, f = 1) — wait, keep it simple: task mode with the
  // only proposal held by a crashed process forces ballot recovery.
  const consensus::SystemConfig cfg{3, 1, 1};
  auto runner = harness::RunSpec(cfg).delta(100).probe(probe).core(core::Mode::kTask);
  consensus::SyncScenario s;
  s.crashes = {2};
  s.proposals = {{0, Value{100}}, {1, Value{101}}};
  runner->run(s);
  ASSERT_TRUE(runner->monitor().safe());

  EXPECT_GT(metrics.counter_value("ballots.started"), 0u);
  EXPECT_GT(metrics.counter_value("crashes"), 0u);
  EXPECT_GT(metrics.counter_value("timers.fired"), 0u);
  // Some selection branch fired for every 2A the recovery leader sent.
  std::uint64_t selections = 0;
  for (const auto& [name, counter] : metrics.counters())
    if (name.rfind("selection.", 0) == 0) selections += counter.value();
  EXPECT_GT(selections, 0u);

  bool saw_ballot_start = false;
  bool saw_selection = false;
  for (const auto& e : tracer.events()) {
    saw_ballot_start |= e.kind == EventKind::kBallotStart;
    saw_selection |= e.kind == EventKind::kSelectionVerdict;
  }
  EXPECT_TRUE(saw_ballot_start);
  EXPECT_TRUE(saw_selection);
}

TEST(ObsEndToEnd, DisabledProbeProducesNoMetricsOrEvents) {
  // A run with a default probe must leave a registry untouched (it is not
  // attached) and record nothing — the configuration every tier-1 test and
  // benchmark runs in.
  const consensus::SystemConfig cfg{3, 1, 1};
  auto runner = harness::RunSpec(cfg).delta(100).core(core::Mode::kTask);
  consensus::SyncScenario s;
  for (int p = 0; p < 3; ++p) s.proposals.push_back({p, Value{100 + p}});
  runner->run(s);
  EXPECT_TRUE(runner->monitor().safe());
}

}  // namespace
}  // namespace twostep::obs
