// Tests for the observability subsystem: RunTracer ring semantics, probe
// short-circuiting, MetricsRegistry counter/histogram behaviour, exporter
// well-formedness (validated with a small JSON parser below), and an
// end-to-end fast-path run of the paper's protocol with a probe attached.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "consensus/scenario.hpp"
#include "harness/run_spec.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace twostep::obs {
namespace {

using consensus::Value;

// ---- minimal JSON validator (no JSON library in the toolchain) ----
//
// Recursive-descent recognizer for RFC 8259 JSON; returns true iff the whole
// string is one valid JSON value.  Enough to assert the exporters emit
// parseable output without pulling in a dependency.

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_])))
              return false;
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    return pos_ > start;
  }

  bool literal(const char* word) {
    for (const char* c = word; *c; ++c) {
      if (pos_ >= s_.size() || s_[pos_] != *c) return false;
      ++pos_;
    }
    return true;
  }

  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r'))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

bool is_valid_json(const std::string& text) { return JsonValidator(text).valid(); }

TraceEvent event_at(sim::Tick t, EventKind kind = EventKind::kTimerFire) {
  TraceEvent e;
  e.kind = kind;
  e.at = t;
  e.process = 0;
  return e;
}

// ---- RunTracer ----

TEST(RunTracer, RetainsEventsInOrder) {
  RunTracer tracer(8);
  for (int i = 0; i < 5; ++i) tracer.record(event_at(i));
  EXPECT_EQ(tracer.size(), 5u);
  EXPECT_EQ(tracer.recorded(), 5u);
  EXPECT_EQ(tracer.evicted(), 0u);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(events[static_cast<std::size_t>(i)].at, i);
}

TEST(RunTracer, RingEvictsOldestBeyondCapacity) {
  RunTracer tracer(4);
  for (int i = 0; i < 10; ++i) tracer.record(event_at(i));
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.capacity(), 4u);
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.evicted(), 6u);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  // The newest 4, still chronological.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(events[static_cast<std::size_t>(i)].at, 6 + i);
}

TEST(RunTracer, ClearEmptiesTheRing) {
  RunTracer tracer(4);
  tracer.record(event_at(1));
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_TRUE(tracer.events().empty());
}

class CollectingSink : public TraceSink {
 public:
  void on_event(const TraceEvent& event) override { seen.push_back(event); }
  std::vector<TraceEvent> seen;
};

TEST(RunTracer, SinkSeesEveryEventIncludingEvicted) {
  RunTracer tracer(2);
  CollectingSink sink;
  tracer.set_sink(&sink);
  for (int i = 0; i < 7; ++i) tracer.record(event_at(i));
  ASSERT_EQ(sink.seen.size(), 7u);  // ring kept only 2, the sink got all 7
  for (int i = 0; i < 7; ++i) EXPECT_EQ(sink.seen[static_cast<std::size_t>(i)].at, i);
}

// ---- Probe ----

TEST(Probe, NullProbeNeverInvokesTheEventBuilder) {
  Probe probe;  // both pointers null
  EXPECT_FALSE(probe.enabled());
  int builds = 0;
  probe.trace([&] {
    ++builds;
    return TraceEvent{};
  });
  // The zero-overhead contract: with no tracer installed the build lambda —
  // and hence any formatting/allocation inside it — must not run.
  EXPECT_EQ(builds, 0);
}

TEST(Probe, MetricsOnlyProbeStillSkipsTraceBuilders) {
  MetricsRegistry registry;
  Probe probe{nullptr, &registry};
  EXPECT_TRUE(probe.enabled());
  EXPECT_FALSE(probe.tracing());
  int builds = 0;
  probe.trace([&] {
    ++builds;
    return TraceEvent{};
  });
  EXPECT_EQ(builds, 0);
}

TEST(Probe, TracingProbeRecordsBuiltEvents) {
  RunTracer tracer;
  Probe probe{&tracer, nullptr};
  probe.trace([] { return TraceEvent{.kind = EventKind::kCrash, .at = 5, .process = 2}; });
  ASSERT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.events()[0].kind, EventKind::kCrash);
  EXPECT_EQ(tracer.events()[0].process, 2);
}

// ---- message_label fallback ----

struct PlainPayload {
  int x = 0;
};

TEST(MessageLabel, FallsBackForUnnamedTypes) {
  EXPECT_STREQ(message_label(PlainPayload{}), "msg");
  EXPECT_STREQ(message_label(core::Message{core::ProposeMsg{Value{1}}}), "Propose");
  EXPECT_STREQ(message_label(core::Message{core::OneBMsg{}}), "1B");
}

// ---- MetricsRegistry ----

TEST(MetricsRegistry, CountersStartAtZeroAndAccumulate) {
  MetricsRegistry registry;
  Counter& c = registry.counter("x");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(registry.counter_value("x"), 42u);
  EXPECT_EQ(registry.counter_value("never-registered"), 0u);
}

TEST(MetricsRegistry, CounterReferencesStayStableAcrossRegistrations) {
  MetricsRegistry registry;
  Counter& a = registry.counter("a");
  a.add();
  for (int i = 0; i < 100; ++i) registry.counter("other-" + std::to_string(i));
  a.add();  // must still point at live storage
  EXPECT_EQ(registry.counter_value("a"), 2u);
  EXPECT_EQ(&a, &registry.counter("a"));
}

TEST(MetricsRegistry, CounterCellWritesAreVisible) {
  MetricsRegistry registry;
  std::atomic<std::uint64_t>* cell = registry.counter("raw").cell();
  cell->fetch_add(7, std::memory_order_relaxed);
  EXPECT_EQ(registry.counter_value("raw"), 7u);
}

TEST(MetricsRegistry, HistogramsRecordSamples) {
  MetricsRegistry registry;
  util::Summary& h = registry.histogram("lat");
  for (double x : {1.0, 2.0, 3.0, 4.0}) h.add(x);
  EXPECT_EQ(registry.histograms().at("lat").count(), 4u);
  EXPECT_DOUBLE_EQ(registry.histogram("lat").mean(), 2.5);
}

TEST(MetricsRegistry, ResetClearsEverything) {
  MetricsRegistry registry;
  registry.counter("c").add(3);
  registry.histogram("h").add(1.0);
  registry.reset();
  EXPECT_EQ(registry.counter_value("c"), 0u);
  EXPECT_EQ(registry.histogram("h").count(), 0u);
}

TEST(MetricsRegistry, JsonOutputIsWellFormed) {
  MetricsRegistry registry;
  registry.counter("net.sent.Propose").add(6);
  registry.counter("decisions.fast").add();
  registry.histogram("decision_latency").add(200.0);
  registry.histogram("decision_latency").add(300.0);
  const std::string json = registry.to_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"net.sent.Propose\": 6"), std::string::npos) << json;
  EXPECT_NE(json.find("decision_latency"), std::string::npos);
}

TEST(MetricsRegistry, EmptyRegistryJsonIsWellFormed) {
  MetricsRegistry registry;
  EXPECT_TRUE(is_valid_json(registry.to_json())) << registry.to_json();
}

TEST(MetricsRegistry, MergeAddsCountersAndHistograms) {
  // Per-task registries merged after a parallel join must aggregate to what
  // one sequential registry would have recorded.
  MetricsRegistry a, b;
  a.counter("shared").add(2);
  a.histogram("lat").add(1.0);
  b.counter("shared").add(5);
  b.counter("only_b").add(1);
  b.histogram("lat").add(3.0);
  b.histogram("only_b_lat").add(7.0);
  a.merge(b);
  EXPECT_EQ(a.counter_value("shared"), 7u);
  EXPECT_EQ(a.counter_value("only_b"), 1u);
  EXPECT_EQ(a.histogram("lat").count(), 2u);
  EXPECT_DOUBLE_EQ(a.histogram("lat").mean(), 2.0);
  EXPECT_EQ(a.histogram("only_b_lat").count(), 1u);
  a.merge(MetricsRegistry{});  // empty merge is a no-op
  EXPECT_EQ(a.counter_value("shared"), 7u);
}

// ---- LogHistogram ----

TEST(LogHistogram, EmptyHistogramSnapshotsToZeros) {
  LogHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p999, 0.0);
}

TEST(LogHistogram, SingleSampleIsExactAtEveryQuantile) {
  // The quantile walk lands on a bucket midpoint, but the clamp into
  // [min, max] makes a one-sample histogram exact everywhere.
  LogHistogram h;
  h.record(12345);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 12345);
  EXPECT_EQ(h.max(), 12345);
  EXPECT_DOUBLE_EQ(h.mean(), 12345.0);
  for (const double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0})
    EXPECT_DOUBLE_EQ(h.percentile(q), 12345.0) << "q=" << q;
}

TEST(LogHistogram, SmallValuesGetExactBuckets) {
  // Values 0..31 have one bucket each, so quantiles below 32 are exact.
  LogHistogram h;
  for (std::int64_t v = 0; v < 32; ++v) h.record(v);
  for (std::int64_t v = 0; v < 32; ++v) EXPECT_EQ(LogHistogram::bucket_index(v), v);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 31.0);
  // Closest-rank p50 of 0..31 is the 16th sample, value 15.
  EXPECT_NEAR(h.percentile(0.5), 15.0, 1.0);
}

TEST(LogHistogram, BucketMathRoundTripsAcrossTheTrackedRange) {
  // For every probed value: the bucket index is monotone in v, and the
  // bucket's reported midpoint is within one sub-bucket (1/32 relative
  // error) of the sample.
  int prev = -1;
  for (std::int64_t v = 0; v < LogHistogram::kOverflowValue; v = v * 2 + 1) {
    const int idx = LogHistogram::bucket_index(v);
    EXPECT_GE(idx, prev) << "v=" << v;
    prev = idx;
    EXPECT_LT(idx, LogHistogram::kBucketCount - 1) << "v=" << v;
    const double mid = static_cast<double>(LogHistogram::bucket_value(idx));
    const double tolerance = std::max(1.0, static_cast<double>(v) / 32.0);
    EXPECT_NEAR(mid, static_cast<double>(v), tolerance) << "v=" << v << " idx=" << idx;
  }
}

TEST(LogHistogram, QuantileErrorIsBoundedByBucketResolution) {
  LogHistogram h;
  constexpr std::int64_t kN = 100'000;
  for (std::int64_t v = 1; v <= kN; ++v) h.record(v);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kN));
  EXPECT_NEAR(h.mean(), static_cast<double>(kN + 1) / 2.0, 0.5);
  // Uniform 1..N: the q-quantile is q*N, and the log-linear buckets bound
  // the relative error by 1/32 (~3.2%).
  for (const double q : {0.5, 0.9, 0.99, 0.999})
    EXPECT_NEAR(h.percentile(q), q * static_cast<double>(kN),
                q * static_cast<double>(kN) / 32.0 + 1.0)
        << "q=" << q;
}

TEST(LogHistogram, NegativeSamplesClampToZero) {
  LogHistogram h;
  h.record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(LogHistogram, OverflowSamplesSaturateWithoutLosingTheCount) {
  LogHistogram h;
  const std::int64_t huge = LogHistogram::kOverflowValue * 4;
  h.record(10);
  h.record(huge);
  EXPECT_EQ(h.count(), 2u);              // the sample is counted...
  EXPECT_EQ(h.max(), huge);              // ...and min/max stay exact.
  EXPECT_EQ(LogHistogram::bucket_index(huge), LogHistogram::kBucketCount - 1);
  // The top quantile reports at least the tracked maximum (the clamp may
  // raise it to the observed max, never below the overflow marker).
  EXPECT_GE(h.percentile(1.0), static_cast<double>(LogHistogram::kOverflowValue));
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 10.0);
}

TEST(LogHistogram, MergeMatchesSequentialRecording) {
  LogHistogram evens, odds, all;
  for (std::int64_t v = 0; v < 2'000; ++v) {
    ((v % 2 == 0) ? evens : odds).record(v * 7);
    all.record(v * 7);
  }
  evens.merge(odds);
  EXPECT_EQ(evens.count(), all.count());
  EXPECT_DOUBLE_EQ(evens.mean(), all.mean());
  EXPECT_EQ(evens.min(), all.min());
  EXPECT_EQ(evens.max(), all.max());
  for (const double q : {0.5, 0.9, 0.99})
    EXPECT_DOUBLE_EQ(evens.percentile(q), all.percentile(q)) << "q=" << q;
}

TEST(LogHistogram, ResetForgetsEverySample) {
  LogHistogram h;
  h.record(100);
  h.record(LogHistogram::kOverflowValue * 2);
  h.reset();
  EXPECT_TRUE(h.empty());
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  h.record(7);  // still usable after reset
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 7.0);
}

TEST(LogHistogram, SnapshotAgreesWithAccessors) {
  LogHistogram h;
  for (const std::int64_t v : {3, 1000, 250, 42}) h.record(v);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, h.count());
  EXPECT_DOUBLE_EQ(s.mean, h.mean());
  EXPECT_DOUBLE_EQ(s.min, static_cast<double>(h.min()));
  EXPECT_DOUBLE_EQ(s.max, static_cast<double>(h.max()));
  EXPECT_DOUBLE_EQ(s.p50, h.percentile(0.5));
  EXPECT_DOUBLE_EQ(s.p999, h.percentile(0.999));
}

TEST(MetricsRegistry, LogHistogramsShareTheHistogramJsonNamespace) {
  MetricsRegistry registry;
  registry.log_histogram("live.lat_us").record(500);
  registry.histogram("sim.lat").add(2.0);
  const std::string json = registry.to_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"live.lat_us\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"sim.lat\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p999\""), std::string::npos) << json;
}

TEST(MetricsRegistry, MergeAddsLogHistograms) {
  MetricsRegistry a, b;
  a.log_histogram("lat").record(10);
  b.log_histogram("lat").record(30);
  b.log_histogram("only_b").record(5);
  a.merge(b);
  EXPECT_EQ(a.log_histogram_snapshot("lat").count, 2u);
  EXPECT_DOUBLE_EQ(a.log_histogram_snapshot("lat").mean, 20.0);
  EXPECT_EQ(a.log_histogram_snapshot("only_b").count, 1u);
  EXPECT_EQ(a.log_histogram_snapshot("never").count, 0u);
}

TEST(LogHistogramLive, ConcurrentRecordersAndSnapshotsAreRaceFree) {
  // The live-runtime contract: event-loop threads record while a scraper
  // snapshots from another thread.  Runs under TSan in CI (the 'Live'
  // filter) — the assertion here is the absence of data races plus exact
  // final totals once the writers join.
  MetricsRegistry registry;
  LogHistogram& h = registry.log_histogram("live.rtt_us");
  constexpr int kWriters = 4;
  constexpr std::int64_t kPerWriter = 20'000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const HistogramSnapshot s = h.snapshot();
      EXPECT_LE(s.count, static_cast<std::uint64_t>(kWriters * kPerWriter));
      (void)registry.to_json();  // registration map + JSON under writers
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w)
    writers.emplace_back([&h, w] {
      for (std::int64_t i = 0; i < kPerWriter; ++i) h.record(i + w);
    });
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kWriters * kPerWriter));
}

// ---- exporters ----

RunTracer make_sample_trace() {
  RunTracer tracer;
  tracer.record({EventKind::kProposal, 0, 0, consensus::kNoProcess, -1, Value{100}, "", 0});
  tracer.record({EventKind::kMessageSend, 0, 0, 1, -1, {}, "Propose", 1});
  tracer.record({EventKind::kMessageDeliver, 100, 1, 0, -1, {}, "Propose", 1});
  tracer.record({EventKind::kBallotStart, 200, 1, consensus::kNoProcess, 4, {}, "", 0});
  tracer.record({EventKind::kSelectionVerdict, 300, 1, consensus::kNoProcess, 4, Value{100},
                 "own_initial", 0});
  tracer.record({EventKind::kBallotStart, 500, 1, consensus::kNoProcess, 7, {}, "", 0});
  tracer.record({EventKind::kDecision, 600, 1, consensus::kNoProcess, 7, Value{100}, "slow", 0});
  return tracer;
}

TEST(Export, JsonlEveryLineParses) {
  const RunTracer tracer = make_sample_trace();
  std::ostringstream os;
  write_jsonl(tracer, os);
  std::istringstream is(os.str());
  std::string line;
  int lines = 0;
  while (std::getline(is, line)) {
    ++lines;
    EXPECT_TRUE(is_valid_json(line)) << line;
  }
  EXPECT_EQ(lines, 7);
}

TEST(Export, ChromeTraceIsOneValidJsonObject) {
  const RunTracer tracer = make_sample_trace();
  std::ostringstream os;
  write_chrome_trace(tracer, os);
  const std::string json = os.str();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Ballot spans: ballot 4 opens with "B" and is closed (by ballot 7 or the
  // trace end), so both phase kinds must appear.
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
  // Process metadata names the tracks.
  EXPECT_NE(json.find("process_name"), std::string::npos);
}

TEST(Export, FormatEventIsHumanReadable) {
  TraceEvent e{EventKind::kDecision, 200, 2, consensus::kNoProcess, 0, Value{102}, "fast", 0};
  const std::string line = format_event(e);
  EXPECT_NE(line.find("t=200"), std::string::npos) << line;
  EXPECT_NE(line.find("p2"), std::string::npos);
  EXPECT_NE(line.find("decision"), std::string::npos);
  EXPECT_NE(line.find("fast"), std::string::npos);
  EXPECT_NE(line.find("102"), std::string::npos);
}

// ---- end-to-end: probe through a simulated run ----

TEST(ObsEndToEnd, FastPathRunEmitsExpectedEventsAndMetrics) {
  RunTracer tracer;
  MetricsRegistry metrics;
  const Probe probe{&tracer, &metrics};

  // Task mode at the bound n = 3 (e = 1, f = 1), failure-free, proposals
  // 100+p with p2's maximal value delivered first: p2 decides on the fast
  // path at 2Δ, everyone else learns.
  const consensus::SystemConfig cfg{3, 1, 1};
  auto runner = harness::RunSpec(cfg).delta(100).probe(probe).core(core::Mode::kTask);
  consensus::SyncScenario s;
  for (int p = 2; p >= 0; --p) s.proposals.push_back({p, Value{100 + p}});
  runner->run(s);
  ASSERT_TRUE(runner->monitor().safe());

  // Metrics: one fast decision (p2), two learned (p0, p1), no slow ones.
  EXPECT_EQ(metrics.counter_value("decisions.fast"), 1u);
  EXPECT_EQ(metrics.counter_value("decisions.learned"), 2u);
  EXPECT_EQ(metrics.counter_value("decisions.slow"), 0u);
  EXPECT_EQ(metrics.counter_value("proposals"), 3u);
  // Every proposer broadcasts Propose to the other two.
  EXPECT_EQ(metrics.counter_value("net.sent.Propose"), 6u);
  EXPECT_EQ(metrics.counter_value("net.sent.Decide"), 2u);
  EXPECT_GT(metrics.counter_value("sim.events"), 0u);
  EXPECT_EQ(metrics.histograms().at("decision_latency").count(), 3u);

  // Event stream: the first decision is p2's fast one, and a fast_vote
  // transition precedes it (someone voted for p2's proposal).
  const auto events = tracer.events();
  ASSERT_FALSE(events.empty());
  const TraceEvent* first_decision = nullptr;
  bool saw_fast_vote_before_decision = false;
  for (const auto& e : events) {
    if (!first_decision && e.kind == EventKind::kPhaseTransition &&
        std::string(e.label) == "fast_vote")
      saw_fast_vote_before_decision = true;
    if (e.kind == EventKind::kDecision && !first_decision) first_decision = &e;
  }
  ASSERT_NE(first_decision, nullptr);
  EXPECT_STREQ(first_decision->label, "fast");
  EXPECT_EQ(first_decision->process, 2);
  EXPECT_EQ(first_decision->value, Value{102});
  EXPECT_EQ(first_decision->at, 200);  // 2Δ
  EXPECT_TRUE(saw_fast_vote_before_decision);

  // Proposals are traced for every process.
  int proposals = 0;
  for (const auto& e : events)
    if (e.kind == EventKind::kProposal) ++proposals;
  EXPECT_EQ(proposals, 3);

  // Chronological ordering of the retained stream.
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LE(events[i - 1].at, events[i].at);

  // The whole run exports to valid JSON in both formats.
  std::ostringstream chrome;
  write_chrome_trace(tracer, chrome);
  EXPECT_TRUE(is_valid_json(chrome.str()));
  std::ostringstream jsonl;
  write_jsonl(tracer, jsonl);
  std::istringstream lines(jsonl.str());
  std::string line;
  while (std::getline(lines, line)) EXPECT_TRUE(is_valid_json(line)) << line;
}

TEST(ObsEndToEnd, SlowPathRunCountsBallotsAndSelectionBranches) {
  RunTracer tracer;
  MetricsRegistry metrics;
  const Probe probe{&tracer, &metrics};

  // Crash the would-be fast proposer's voters: with p0 crashed and only p0
  // proposing... instead: crash p2 and give only p0 a proposal in object
  // mode at n = 4 (e = 1, f = 1) — wait, keep it simple: task mode with the
  // only proposal held by a crashed process forces ballot recovery.
  const consensus::SystemConfig cfg{3, 1, 1};
  auto runner = harness::RunSpec(cfg).delta(100).probe(probe).core(core::Mode::kTask);
  consensus::SyncScenario s;
  s.crashes = {2};
  s.proposals = {{0, Value{100}}, {1, Value{101}}};
  runner->run(s);
  ASSERT_TRUE(runner->monitor().safe());

  EXPECT_GT(metrics.counter_value("ballots.started"), 0u);
  EXPECT_GT(metrics.counter_value("crashes"), 0u);
  EXPECT_GT(metrics.counter_value("timers.fired"), 0u);
  // Some selection branch fired for every 2A the recovery leader sent.
  std::uint64_t selections = 0;
  for (const auto& [name, counter] : metrics.counters())
    if (name.rfind("selection.", 0) == 0) selections += counter.value();
  EXPECT_GT(selections, 0u);

  bool saw_ballot_start = false;
  bool saw_selection = false;
  for (const auto& e : tracer.events()) {
    saw_ballot_start |= e.kind == EventKind::kBallotStart;
    saw_selection |= e.kind == EventKind::kSelectionVerdict;
  }
  EXPECT_TRUE(saw_ballot_start);
  EXPECT_TRUE(saw_selection);
}

TEST(ObsEndToEnd, DisabledProbeProducesNoMetricsOrEvents) {
  // A run with a default probe must leave a registry untouched (it is not
  // attached) and record nothing — the configuration every tier-1 test and
  // benchmark runs in.
  const consensus::SystemConfig cfg{3, 1, 1};
  auto runner = harness::RunSpec(cfg).delta(100).core(core::Mode::kTask);
  consensus::SyncScenario s;
  for (int p = 0; p < 3; ++p) s.proposals.push_back({p, Value{100 + p}});
  runner->run(s);
  EXPECT_TRUE(runner->monitor().safe());
}

}  // namespace
}  // namespace twostep::obs
