// Unit tests for net::ReliableChannel: retransmission until acked,
// receiver-side duplicate suppression, loss of acks, exponential backoff
// with a ceiling, bounded retries, idempotent delivery under reordering
// and duplication, and determinism of the whole machinery.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "faults/fault_plan.hpp"
#include "net/latency.hpp"
#include "net/network.hpp"
#include "net/reliable.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace twostep::net {
namespace {

using consensus::ProcessId;
using faults::FaultPlan;

using Net = Network<std::string>;

std::unique_ptr<LatencyModel> fixed(sim::Tick d) { return std::make_unique<FixedDelay>(d); }

NetworkConfig with_plan(std::shared_ptr<FaultPlan> plan) {
  NetworkConfig config;
  config.faults = std::move(plan);
  return config;
}

/// A generous no-jitter config so unit tests control timing exactly.
ReliableConfig calm(sim::Tick rto = 50) {
  ReliableConfig rc;
  rc.rto = rto;
  rc.jitter = 0;
  return rc;
}

TEST(ReliableChannel, DeliversWithoutFaults) {
  sim::Simulator sim;
  Net net{sim, fixed(10), 2};
  ReliableChannel<std::string> ch{net, calm()};
  int got = 0;
  ch.set_handler(1, [&](ProcessId, const std::string&) { ++got; });
  ch.send(0, 1, "hello");
  sim.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(ch.retransmits(), 0u);
  EXPECT_EQ(ch.acks_delivered(), 1u);
  EXPECT_EQ(ch.in_flight(), 0u);
}

TEST(ReliableChannel, RetransmitsUntilAcked) {
  sim::Simulator sim;
  auto plan = std::make_shared<FaultPlan>();
  // Lose exactly the first transmission (sent at t=0); the retransmitted
  // copy and the ack path are untouched.
  plan->drop_if([](sim::Tick now, ProcessId from, ProcessId) { return from == 0 && now == 0; });
  Net net{sim, fixed(10), 2, 1, with_plan(plan)};
  ReliableChannel<std::string> ch{net, calm()};
  int got = 0;
  ch.set_handler(1, [&](ProcessId, const std::string& m) {
    ++got;
    EXPECT_EQ(m, "persist");
  });
  ch.send(0, 1, "persist");
  sim.run();
  EXPECT_EQ(got, 1);
  EXPECT_GE(ch.retransmits(), 1u);
  EXPECT_EQ(ch.acks_delivered(), 1u);
  EXPECT_EQ(ch.gave_up(), 0u);
  EXPECT_EQ(ch.in_flight(), 0u);
}

TEST(ReliableChannel, SuppressesInjectedDuplicates) {
  sim::Simulator sim;
  auto plan = std::make_shared<FaultPlan>();
  plan->duplicate_if([](sim::Tick, ProcessId from, ProcessId) { return from == 0; }, 2);
  Net net{sim, fixed(10), 2, 1, with_plan(plan)};
  ReliableChannel<std::string> ch{net, calm()};
  int got = 0;
  ch.set_handler(1, [&](ProcessId, const std::string&) { ++got; });
  ch.send(0, 1, "once");
  sim.run();
  EXPECT_EQ(got, 1);  // three copies arrived, the handler saw one
  EXPECT_EQ(ch.duplicates_suppressed(), 2u);
  EXPECT_EQ(ch.in_flight(), 0u);
}

TEST(ReliableChannel, LostAcksCauseRetransmitsButSingleDelivery) {
  sim::Simulator sim;
  auto plan = std::make_shared<FaultPlan>();
  // Sever the reverse path: every ack (a control signal sent by p1) is
  // dropped, so the sender retries until it exhausts max_retries.
  plan->drop_if([](sim::Tick, ProcessId from, ProcessId) { return from == 1; });
  Net net{sim, fixed(10), 2, 1, with_plan(plan)};
  ReliableConfig rc = calm(20);
  rc.max_retries = 4;
  ReliableChannel<std::string> ch{net, rc};
  int got = 0;
  ch.set_handler(1, [&](ProcessId, const std::string&) { ++got; });
  ch.send(0, 1, "ack-less");
  sim.run();
  EXPECT_EQ(got, 1);  // duplicate suppression keeps delivery exactly-once
  EXPECT_EQ(ch.retransmits(), 4u);
  EXPECT_EQ(ch.duplicates_suppressed(), 4u);
  EXPECT_EQ(ch.acks_delivered(), 0u);
  EXPECT_EQ(ch.gave_up(), 1u);
  EXPECT_EQ(ch.in_flight(), 0u);
}

TEST(ReliableChannel, BackoffIsExponentialAndCapped) {
  sim::Simulator sim;
  obs::RunTracer tracer;
  NetworkConfig config;
  config.probe = obs::Probe{&tracer, nullptr};
  Net net{sim, fixed(10), 2, 1, config};
  ReliableConfig rc;
  rc.rto = 10;
  rc.backoff = 2.0;
  rc.rto_max = 20;
  rc.jitter = 0;
  rc.max_retries = 3;
  ReliableChannel<std::string> ch{net, rc};
  ch.set_handler(1, [](ProcessId, const std::string&) {});
  net.crash(1);  // no delivery, no ack: pure timeout behaviour
  ch.send(0, 1, "void");
  sim.run();
  EXPECT_EQ(ch.retransmits(), 3u);
  EXPECT_EQ(ch.gave_up(), 1u);
  EXPECT_EQ(ch.in_flight(), 0u);

  std::vector<sim::Tick> retx_times;
  for (const auto& e : tracer.events())
    if (e.kind == obs::EventKind::kRetransmit) retx_times.push_back(e.at);
  // rto 10 doubles to 20 and then hits the 20-tick ceiling: retransmits at
  // t=10, t=30, t=50 (gaps 10, 20, 20 — not 10, 20, 40).
  ASSERT_EQ(retx_times.size(), 3u);
  EXPECT_EQ(retx_times[0], 10);
  EXPECT_EQ(retx_times[1], 30);
  EXPECT_EQ(retx_times[2], 50);
}

TEST(ReliableChannel, GivesUpWhenSenderCrashes) {
  sim::Simulator sim;
  Net net{sim, fixed(10), 2};
  ReliableConfig rc = calm(20);
  ReliableChannel<std::string> ch{net, rc};
  ch.set_handler(1, [](ProcessId, const std::string&) {});
  net.crash(1);
  ch.send(0, 1, "doomed");
  net.crash(0);  // sender dies too: first timeout abandons immediately
  sim.run();
  EXPECT_EQ(ch.retransmits(), 0u);
  EXPECT_EQ(ch.gave_up(), 1u);
  EXPECT_EQ(ch.in_flight(), 0u);
}

TEST(ReliableChannel, IdempotentDeliveryUnderReorderAndDuplication) {
  sim::Simulator sim;
  auto plan = std::make_shared<FaultPlan>(17);
  plan->duplicate(1.0, 2).reorder(1.0, 35);
  Net net{sim, fixed(10), 2, 1, with_plan(plan)};
  ReliableChannel<std::string> ch{net, calm(200)};
  std::vector<std::string> got;
  ch.set_handler(1, [&](ProcessId, const std::string& m) { got.push_back(m); });
  const int kMessages = 8;
  for (int i = 0; i < kMessages; ++i) ch.send(0, 1, "m" + std::to_string(i));
  sim.run();
  // Every message delivered exactly once, in some order.
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kMessages));
  std::vector<std::string> sorted = got;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < kMessages; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)],
                                                "m" + std::to_string(i));
  EXPECT_GE(ch.duplicates_suppressed(), static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(ch.in_flight(), 0u);
}

TEST(ReliableChannel, RawUntaggedSendsStillReachTheHandler) {
  sim::Simulator sim;
  Net net{sim, fixed(10), 2};
  ReliableChannel<std::string> ch{net, calm()};
  int got = 0;
  ch.set_handler(1, [&](ProcessId, const std::string&) { ++got; });
  net.send(0, 1, "raw");  // bypasses the channel entirely
  sim.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(ch.acks_delivered(), 0u);
}

TEST(ReliableChannel, RejectsInvalidConfig) {
  sim::Simulator sim;
  Net net{sim, fixed(10), 2};
  ReliableConfig bad_backoff;
  bad_backoff.backoff = 0.5;
  EXPECT_THROW((ReliableChannel<std::string>{net, bad_backoff}), std::invalid_argument);
  ReliableConfig bad_retries;
  bad_retries.max_retries = -1;
  EXPECT_THROW((ReliableChannel<std::string>{net, bad_retries}), std::invalid_argument);
}

TEST(ReliableChannel, ResolvesZeroConfigAgainstTheModel) {
  sim::Simulator sim;
  Net net{sim, fixed(10), 2};
  ReliableChannel<std::string> ch{net, ReliableConfig{}};
  EXPECT_EQ(ch.config().rto, 20);       // 2 * delta
  EXPECT_EQ(ch.config().rto_max, 320);  // 16 * rto
  EXPECT_EQ(ch.config().jitter, 2);     // rto / 8
}

TEST(ReliableChannel, SameSeedSameRetransmissionSchedule) {
  const auto fingerprint = [](std::uint64_t seed) {
    sim::Simulator sim;
    auto plan = std::make_shared<FaultPlan>(seed);
    plan->drop(0.4);
    Net net{sim, fixed(10), 3, seed, with_plan(plan)};
    ReliableConfig rc;
    rc.seed = seed + 1;  // jitter enabled, explicitly seeded
    ReliableChannel<std::string> ch{net, rc};
    std::ostringstream log;
    for (ProcessId p = 0; p < 3; ++p)
      ch.set_handler(p, [&log, p, &sim](ProcessId from, const std::string& m) {
        log << sim.now() << ':' << from << ">" << p << ':' << m << ';';
      });
    for (int i = 0; i < 20; ++i) ch.send(i % 3, (i + 1) % 3, std::to_string(i));
    sim.run();
    log << "retx=" << ch.retransmits() << " acks=" << ch.acks_delivered()
        << " dups=" << ch.duplicates_suppressed();
    return log.str();
  };
  const std::string first = fingerprint(5);
  EXPECT_EQ(first, fingerprint(5));
  EXPECT_NE(first, fingerprint(6));
}

}  // namespace
}  // namespace twostep::net
