// Tests for the logging module: level gating, scoped restoration, and the
// streaming macro's lazy evaluation.
#include <gtest/gtest.h>

#include "util/log.hpp"

namespace twostep::util {
namespace {

TEST(Log, SetLevelReturnsPrevious) {
  const LogLevel original = log_level();
  const LogLevel previous = set_log_level(LogLevel::kError);
  EXPECT_EQ(previous, original);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(original);
}

TEST(Log, ScopedLevelRestoresOnExit) {
  const LogLevel original = log_level();
  {
    ScopedLogLevel guard{LogLevel::kTrace};
    EXPECT_EQ(log_level(), LogLevel::kTrace);
  }
  EXPECT_EQ(log_level(), original);
}

TEST(Log, ScopedLevelsNest) {
  const LogLevel original = log_level();
  {
    ScopedLogLevel outer{LogLevel::kDebug};
    {
      ScopedLogLevel inner{LogLevel::kOff};
      EXPECT_EQ(log_level(), LogLevel::kOff);
    }
    EXPECT_EQ(log_level(), LogLevel::kDebug);
  }
  EXPECT_EQ(log_level(), original);
}

TEST(Log, MacroSkipsStreamingWhenDisabled) {
  ScopedLogLevel guard{LogLevel::kOff};
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  TWOSTEP_LOG(kDebug) << "value=" << expensive();
  EXPECT_EQ(evaluations, 0);
}

TEST(Log, MacroEvaluatesWhenEnabled) {
  ScopedLogLevel guard{LogLevel::kTrace};
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  // The line goes to stderr; we only assert the side effect here.
  TWOSTEP_LOG(kError) << "value=" << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(Log, LogLineRespectsThreshold) {
  ScopedLogLevel guard{LogLevel::kError};
  // Below threshold: must not crash and must not be emitted (no observable
  // effect to assert beyond "returns").
  log_line(LogLevel::kDebug, "suppressed");
  log_line(LogLevel::kError, "emitted to stderr");
}

TEST(Log, ClockHookPrefixesVirtualTime) {
  ScopedLogLevel level{LogLevel::kTrace};
  ScopedLogClock clock{[] { return std::int64_t{1234}; }};
  testing::internal::CaptureStderr();
  log_line(LogLevel::kInfo, "hello");
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out, "[INFO t=1234] hello\n");
}

TEST(Log, OutputUnchangedWithoutClockHook) {
  ScopedLogLevel level{LogLevel::kTrace};
  set_log_clock({});  // make sure no hook is registered
  testing::internal::CaptureStderr();
  log_line(LogLevel::kWarn, "plain");
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out, "[WARN] plain\n");
}

TEST(Log, SetClockReturnsPrevious) {
  LogClock first = [] { return std::int64_t{1}; };
  LogClock before = set_log_clock(first);
  EXPECT_FALSE(before);  // no hook installed by default
  LogClock previous = set_log_clock({});
  ASSERT_TRUE(previous);
  EXPECT_EQ(previous(), 1);
}

TEST(Log, ScopedClockRestoresOnExit) {
  ScopedLogLevel level{LogLevel::kTrace};
  ScopedLogClock outer{[] { return std::int64_t{7}; }};
  {
    ScopedLogClock inner{[] { return std::int64_t{99}; }};
    testing::internal::CaptureStderr();
    log_line(LogLevel::kInfo, "x");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "[INFO t=99] x\n");
  }
  testing::internal::CaptureStderr();
  log_line(LogLevel::kInfo, "x");
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "[INFO t=7] x\n");
}

}  // namespace
}  // namespace twostep::util
