// Tests for the logging module: level gating, scoped restoration, and the
// streaming macro's lazy evaluation.
#include <gtest/gtest.h>

#include "util/log.hpp"

namespace twostep::util {
namespace {

TEST(Log, SetLevelReturnsPrevious) {
  const LogLevel original = log_level();
  const LogLevel previous = set_log_level(LogLevel::kError);
  EXPECT_EQ(previous, original);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(original);
}

TEST(Log, ScopedLevelRestoresOnExit) {
  const LogLevel original = log_level();
  {
    ScopedLogLevel guard{LogLevel::kTrace};
    EXPECT_EQ(log_level(), LogLevel::kTrace);
  }
  EXPECT_EQ(log_level(), original);
}

TEST(Log, ScopedLevelsNest) {
  const LogLevel original = log_level();
  {
    ScopedLogLevel outer{LogLevel::kDebug};
    {
      ScopedLogLevel inner{LogLevel::kOff};
      EXPECT_EQ(log_level(), LogLevel::kOff);
    }
    EXPECT_EQ(log_level(), LogLevel::kDebug);
  }
  EXPECT_EQ(log_level(), original);
}

TEST(Log, MacroSkipsStreamingWhenDisabled) {
  ScopedLogLevel guard{LogLevel::kOff};
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  TWOSTEP_LOG(kDebug) << "value=" << expensive();
  EXPECT_EQ(evaluations, 0);
}

TEST(Log, MacroEvaluatesWhenEnabled) {
  ScopedLogLevel guard{LogLevel::kTrace};
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  // The line goes to stderr; we only assert the side effect here.
  TWOSTEP_LOG(kError) << "value=" << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(Log, LogLineRespectsThreshold) {
  ScopedLogLevel guard{LogLevel::kError};
  // Below threshold: must not crash and must not be emitted (no observable
  // effect to assert beyond "returns").
  log_line(LogLevel::kDebug, "suppressed");
  log_line(LogLevel::kError, "emitted to stderr");
}

}  // namespace
}  // namespace twostep::util
