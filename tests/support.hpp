// Shared helpers for the test suites: re-exports the RunSpec builder and
// the runner aliases from the harness module under the historical testing
// namespace.  (The deprecated make_*_runner factories are exercised only by
// the dedicated compat test.)
#pragma once

#include "harness/run_spec.hpp"

namespace twostep::testing {

using harness::CoreRunner;
using harness::FastPaxosRunner;
using harness::PaxosRunner;
using harness::RunSpec;

}  // namespace twostep::testing
