// Shared helpers for the test suites: re-exports the canned runner
// factories from the harness module under the historical testing namespace.
#pragma once

#include "harness/runners.hpp"

namespace twostep::testing {

using harness::CoreRunner;
using harness::FastPaxosRunner;
using harness::PaxosRunner;

using harness::make_core_runner;
using harness::make_core_runner_with_model;
using harness::make_fastpaxos_runner;
using harness::make_paxos_runner;

}  // namespace twostep::testing
