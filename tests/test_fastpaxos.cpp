// Tests for the Fast Paxos baseline: fast-round voting, the O4 recovery
// rule, Lamport-style two-step behaviour at n >= 2e+f+1, and the loss of
// fast decisions below that bound (which the paper's protocol fixes).
#include <gtest/gtest.h>

#include "fastpaxos/fast_paxos.hpp"
#include "faults/fault_plan.hpp"
#include "mock_env.hpp"
#include "support.hpp"

namespace twostep::fastpaxos {
namespace {

using consensus::ProcessId;
using consensus::SyncScenario;
using consensus::SystemConfig;
using consensus::Value;
using testing::RunSpec;
using testing::MockEnv;

constexpr sim::Tick kDelta = 100;

struct Fixture {
  explicit Fixture(SystemConfig cfg, ProcessId self = 0)
      : env(self, cfg.n), proc(env, cfg, make_options()) {}

  static Options make_options() {
    Options o;
    o.delta = kDelta;
    o.enable_ballot_timer = false;
    return o;
  }

  MockEnv<Message> env;
  FastPaxosProcess proc;
};

TEST(FastPaxosUnit, ProposeBroadcastsToAll) {
  Fixture f{SystemConfig{4, 1, 1}};
  f.proc.propose(Value{5});
  EXPECT_EQ(f.env.count_sent([](ProcessId, const Message& m) {
              return std::holds_alternative<FastProposeMsg>(m);
            }),
            4);
}

TEST(FastPaxosUnit, AcceptorVotesForFirstProposalOnly) {
  Fixture f{SystemConfig{4, 1, 1}, /*self=*/1};
  f.proc.on_message(0, Message{FastProposeMsg{Value{5}}});
  f.env.clear_sent();
  f.proc.on_message(2, Message{FastProposeMsg{Value{9}}});  // second: refused
  EXPECT_TRUE(f.env.sent().empty());
}

TEST(FastPaxosUnit, NoValueOrderingUnlikeThePaperProtocol) {
  // Fast Paxos accepts ANY first value, even below one's own proposal —
  // exactly the refinement the paper's protocol adds on top.
  Fixture f{SystemConfig{4, 1, 1}, /*self=*/1};
  f.proc.propose(Value{50});
  f.env.clear_sent();
  f.proc.on_message(0, Message{FastProposeMsg{Value{5}}});
  EXPECT_EQ(f.env.count_sent([](ProcessId, const Message& m) {
              return std::holds_alternative<AcceptedMsg>(m) &&
                     std::get<AcceptedMsg>(m).v == Value{5};
            }),
            4);
}

TEST(FastPaxosUnit, DecidesOnFastQuorum) {
  const SystemConfig cfg{4, 1, 1};  // fast quorum 3
  Fixture f{cfg, /*self=*/3};
  Value decided;
  f.proc.on_decide = [&](Value v) { decided = v; };
  f.proc.on_message(0, Message{AcceptedMsg{0, Value{5}}});
  f.proc.on_message(1, Message{AcceptedMsg{0, Value{5}}});
  EXPECT_FALSE(f.proc.has_decided());
  f.proc.on_message(2, Message{AcceptedMsg{0, Value{5}}});
  EXPECT_TRUE(f.proc.has_decided());
  EXPECT_EQ(decided, Value{5});
}

TEST(FastPaxosUnit, SlowBallotNeedsOnlyClassicQuorum) {
  const SystemConfig cfg{4, 1, 1};  // classic quorum 3
  Fixture f{cfg, /*self=*/3};
  f.proc.on_message(0, Message{AcceptedMsg{2, Value{5}}});
  f.proc.on_message(1, Message{AcceptedMsg{2, Value{5}}});
  EXPECT_FALSE(f.proc.has_decided());
  f.proc.on_message(2, Message{AcceptedMsg{2, Value{5}}});
  EXPECT_TRUE(f.proc.has_decided());
}

TEST(FastPaxosUnit, RecoveryPicksThresholdValue) {
  // p1 leads ballot 5 (5 mod 4 == 1) with n=4, f=1, e=1: quorum 3,
  // threshold n-e-f = 2.  Two round-0 votes for 7 may be a fast decision.
  Fixture f{SystemConfig{4, 1, 1}, /*self=*/1};
  f.proc.propose(Value{9});
  f.proc.on_message(0, Message{PromiseMsg{5, 0, Value{7}, {}}});
  f.proc.on_message(2, Message{PromiseMsg{5, 0, Value{7}, {}}});
  f.proc.on_message(3, Message{PromiseMsg{5, 0, Value{4}, {}}});
  EXPECT_EQ(f.env.count_sent([](ProcessId, const Message& m) {
              return std::holds_alternative<AcceptMsg>(m) &&
                     std::get<AcceptMsg>(m).v == Value{7};
            }),
            4);
}

TEST(FastPaxosUnit, RecoveryPrefersSlowBallotVotes) {
  Fixture f{SystemConfig{4, 1, 1}, /*self=*/1};
  f.proc.propose(Value{9});
  f.proc.on_message(0, Message{PromiseMsg{5, 0, Value{7}, {}}});
  f.proc.on_message(2, Message{PromiseMsg{5, 3, Value{8}, {}}});  // slow vote wins
  f.proc.on_message(3, Message{PromiseMsg{5, 0, Value{7}, {}}});
  EXPECT_EQ(f.env.count_sent([](ProcessId, const Message& m) {
              return std::holds_alternative<AcceptMsg>(m) &&
                     std::get<AcceptMsg>(m).v == Value{8};
            }),
            4);
}

TEST(FastPaxosUnit, RecoveryFallsBackToOwnValue) {
  Fixture f{SystemConfig{4, 1, 1}, /*self=*/1};
  f.proc.propose(Value{9});
  for (ProcessId q : {0, 2, 3})
    f.proc.on_message(q, Message{PromiseMsg{5, -1, {}, {}}});
  EXPECT_EQ(f.env.count_sent([](ProcessId, const Message& m) {
              return std::holds_alternative<AcceptMsg>(m) &&
                     std::get<AcceptMsg>(m).v == Value{9};
            }),
            4);
}

// ---------- end-to-end ----------

TEST(FastPaxosRun, SingleProposerEveryoneTwoStepAtLamportBound) {
  // Lamport's (stronger) fast condition: with one proposer and e crashes,
  // EVERY correct process decides at 2Δ — but this needs n = 2e+f+1.
  const int e = 1;
  const int f = 1;
  const SystemConfig cfg{SystemConfig::min_processes_fast_paxos(e, f), f, e};
  ASSERT_EQ(cfg.n, 4);
  auto r = RunSpec(cfg).delta(kDelta).fastpaxos();
  SyncScenario s;
  s.crashes = {3};
  s.proposals = {{0, Value{10}}};
  r->run(s);
  EXPECT_TRUE(r->monitor().safe());
  for (ProcessId p = 0; p < 3; ++p)
    EXPECT_TRUE(r->monitor().two_step_for(p, kDelta)) << "p" << p;
}

TEST(FastPaxosRun, BelowLamportBoundFastPathUnsoundOrSlow) {
  // At n = 2e+f (one below Lamport's bound) the fast quorum n-e no longer
  // guarantees recoverability: with f=1, e=1, n=3 a fast quorum is 2 and a
  // 1B quorum of 2 may contain a single round-0 vote, below the threshold
  // n-e-f = 1... the run here shows the *latency* half: with one crash the
  // fast path may still fire, but contended proposals need the slow path.
  const SystemConfig cfg{3, 1, 1};
  auto r = RunSpec(cfg).delta(kDelta).fastpaxos();
  SyncScenario s;
  s.crashes = {2};
  s.proposals = {{0, Value{10}}, {1, Value{20}}};
  r->run(s);
  // p0's proposal is delivered first everywhere; with n=3 and e=1 the fast
  // quorum is 2: both correct processes vote 10 and decide.  Safety holds in
  // this synchronous run; the T4 lower-bound harness shows how asynchrony
  // breaks this configuration.
  EXPECT_TRUE(r->monitor().safe());
  EXPECT_TRUE(r->monitor().undecided_correct(cfg.n).empty());
}

TEST(FastPaxosRun, ContendedProposalsFallBackToSlowPath) {
  // Split votes: two proposals race; no value reaches the fast quorum and
  // the coordinator recovers on a slow ballot.
  const SystemConfig cfg{4, 1, 1};
  // Interleave deliveries so the votes split 2-2: p0's proposal reaches
  // p0, p1 first; p3's proposal reaches p2, p3 first.
  auto plan = std::make_shared<faults::FaultPlan>();
  plan->delay_rule(faults::typed_delay_rule<Message>(
      [](sim::Tick now, ProcessId from, ProcessId to,
         const Message& m) -> std::optional<sim::Tick> {
        if (!std::holds_alternative<FastProposeMsg>(m)) return std::nullopt;
        const bool lowhalf = to <= 1;
        const sim::Tick round = (now / kDelta + 1) * kDelta;
        if (from == 0) return lowhalf ? round : round + 1;
        return lowhalf ? round + 1 : round;
      }));
  auto r = RunSpec(cfg).delta(kDelta).fault_plan(plan).fastpaxos();
  r->cluster().start_all();
  r->cluster().propose(0, Value{10});
  r->cluster().propose(3, Value{20});
  r->cluster().run();
  EXPECT_TRUE(r->monitor().safe());
  EXPECT_TRUE(r->monitor().undecided_correct(cfg.n).empty());
  for (ProcessId p = 0; p < cfg.n; ++p)
    EXPECT_FALSE(r->monitor().two_step_for(p, kDelta)) << "p" << p;
}

TEST(FastPaxosRun, NeedsOneMoreProcessThanPaperObjectProtocol) {
  // The headline comparison at e=2, f=2: the paper's object protocol fits
  // in n=5; Fast Paxos needs n=7.
  EXPECT_EQ(SystemConfig::min_processes_fast_paxos(2, 2), 7);
  EXPECT_EQ(SystemConfig::min_processes_object(2, 2), 5);
  const SystemConfig cfg{7, 2, 2};
  auto r = RunSpec(cfg).delta(kDelta).fastpaxos();
  SyncScenario s;
  s.crashes = {5, 6};
  s.proposals = {{0, Value{10}}};
  r->run(s);
  EXPECT_TRUE(r->monitor().safe());
  for (ProcessId p = 0; p < 5; ++p) EXPECT_TRUE(r->monitor().two_step_for(p, kDelta));
}

class FastPaxosPartialSynchrony : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FastPaxosPartialSynchrony, SafeAndLiveAcrossSeeds) {
  const SystemConfig cfg{7, 2, 2};
  fastpaxos::Options options;
  options.delta = kDelta;
  auto r = std::make_unique<testing::FastPaxosRunner>(
      cfg, std::make_unique<net::PartialSynchrony>(1500, kDelta, 1200), options, GetParam());
  SyncScenario s;
  s.proposals = {{0, Value{10}}, {2, Value{30}}, {4, Value{50}}, {6, Value{70}}};
  r->cluster().crash_at(220, 0);
  r->cluster().crash_at(400, 4);
  r->run(s);
  EXPECT_TRUE(r->monitor().safe()) << r->monitor().violations().front();
  EXPECT_TRUE(r->cluster().all_correct_decided());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastPaxosPartialSynchrony,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace twostep::fastpaxos
