// A mock Env that records outbound messages and timers, letting tests drive
// protocol handlers directly and assert on preconditions message by message.
#pragma once

#include <utility>
#include <vector>

#include "consensus/env.hpp"

namespace twostep::testing {

template <typename Msg>
class MockEnv final : public consensus::Env<Msg> {
 public:
  MockEnv(consensus::ProcessId self, int n) : self_(self), n_(n) {}

  [[nodiscard]] consensus::ProcessId self() const override { return self_; }
  [[nodiscard]] int cluster_size() const override { return n_; }
  [[nodiscard]] sim::Tick now() const override { return now_; }

  void send(consensus::ProcessId to, const Msg& msg) override { sent_.emplace_back(to, msg); }

  consensus::TimerId set_timer(sim::Tick delay) override {
    const consensus::TimerId id{next_timer_++};
    timers_.emplace_back(id, now_ + delay);
    return id;
  }

  void cancel_timer(consensus::TimerId id) override {
    std::erase_if(timers_, [&](const auto& t) { return t.first == id; });
  }

  // --- test controls ---
  void advance(sim::Tick dt) { now_ += dt; }

  [[nodiscard]] const std::vector<std::pair<consensus::ProcessId, Msg>>& sent() const {
    return sent_;
  }
  void clear_sent() { sent_.clear(); }

  /// Messages sent to a particular destination.
  [[nodiscard]] std::vector<Msg> sent_to(consensus::ProcessId to) const {
    std::vector<Msg> out;
    for (const auto& [dst, m] : sent_)
      if (dst == to) out.push_back(m);
    return out;
  }

  /// Count of messages matching a predicate.
  template <typename Pred>
  [[nodiscard]] int count_sent(Pred pred) const {
    int k = 0;
    for (const auto& [dst, m] : sent_)
      if (pred(dst, m)) ++k;
    return k;
  }

  [[nodiscard]] const std::vector<std::pair<consensus::TimerId, sim::Tick>>& timers() const {
    return timers_;
  }

 private:
  consensus::ProcessId self_;
  int n_;
  sim::Tick now_ = 0;
  std::uint64_t next_timer_ = 1;
  std::vector<std::pair<consensus::ProcessId, Msg>> sent_;
  std::vector<std::pair<consensus::TimerId, sim::Tick>> timers_;
};

}  // namespace twostep::testing
