// Unit tests for src/util: deterministic RNG, statistics, tables, subset
// enumeration.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/backoff.hpp"
#include "util/combinatorics.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace twostep::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{12345};
  Rng b{12345};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.next_below(17);
    EXPECT_LT(x, 17u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng{7};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng{99};
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.next_in(-5, 5);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
  }
}

TEST(Rng, NextInSingletonInterval) {
  Rng rng{3};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_in(42, 42), 42);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng{11};
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent{5};
  Rng child = parent.fork();
  // The child must not replay the parent's stream.
  Rng parent_copy{5};
  (void)parent_copy();  // skip the value consumed by fork()
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (child() == parent_copy()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng{21};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng{22};
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Summary, EmptySummaryIsZero) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.percentile(0.5), 0.0);
}

TEST(Summary, MeanMinMax) {
  Summary s;
  for (double x : {3.0, 1.0, 2.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(Summary, MedianOddAndEven) {
  Summary odd;
  for (double x : {5.0, 1.0, 3.0}) odd.add(x);
  EXPECT_DOUBLE_EQ(odd.median(), 3.0);

  Summary even;
  for (double x : {1.0, 2.0, 3.0, 4.0}) even.add(x);
  EXPECT_DOUBLE_EQ(even.median(), 2.5);
}

TEST(Summary, PercentileInterpolates) {
  Summary s;
  for (int i = 0; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.percentile(0.99), 99.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
}

TEST(Summary, StddevKnownValue) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
}

TEST(Summary, SingleSamplePercentiles) {
  Summary s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.99), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 42.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, PercentileClampsOutOfRangeQuantiles) {
  Summary s;
  for (double x : {5.0, 1.0, 3.0}) s.add(x);
  // q <= 0 returns the minimum, q >= 1 the maximum — even beyond [0, 1].
  EXPECT_DOUBLE_EQ(s.percentile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(2.0), 5.0);
}

TEST(Summary, AddAfterPercentileQuery) {
  Summary s;
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(Summary, MergeMatchesSequentialAddition) {
  // Parallel sweeps build per-task summaries and merge them after the join;
  // the aggregate must match adding every sample into one summary.
  Summary reference, a, b;
  for (double x : {5.0, 1.0, 4.0}) {
    reference.add(x);
    a.add(x);
  }
  for (double x : {2.0, 9.0}) {
    reference.add(x);
    b.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), reference.count());
  EXPECT_DOUBLE_EQ(a.mean(), reference.mean());
  EXPECT_DOUBLE_EQ(a.median(), reference.median());
  EXPECT_DOUBLE_EQ(a.percentile(0.9), reference.percentile(0.9));

  Summary empty;
  a.merge(empty);  // merging an empty summary is a no-op
  EXPECT_EQ(a.count(), 5u);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"a", "bb"});
  t.add_row({"xxx", "y"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| a   | bb |"), std::string::npos);
  EXPECT_NE(out.find("| xxx | y  |"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NE(t.to_string().find("| 1 |"), std::string::npos);
}

TEST(Table, NumFormatsDecimals) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Combinations, CountsMatchBinomials) {
  EXPECT_EQ(combinations(5, 2).size(), 10u);
  EXPECT_EQ(combinations(6, 3).size(), 20u);
  EXPECT_EQ(combinations(4, 0).size(), 1u);
  EXPECT_EQ(combinations(4, 4).size(), 1u);
}

TEST(Combinations, OutOfRangeKYieldsNothing) {
  EXPECT_TRUE(combinations(3, 4).empty());
  EXPECT_TRUE(combinations(3, -1).empty());
}

TEST(Combinations, ElementsAreSortedAndUnique) {
  for (const auto& c : combinations(6, 3)) {
    ASSERT_EQ(c.size(), 3u);
    EXPECT_LT(c[0], c[1]);
    EXPECT_LT(c[1], c[2]);
    EXPECT_GE(c[0], 0);
    EXPECT_LT(c[2], 6);
  }
}

TEST(Combinations, LexicographicOrder) {
  const auto cs = combinations(4, 2);
  const std::vector<std::vector<int>> expected = {{0, 1}, {0, 2}, {0, 3},
                                                  {1, 2}, {1, 3}, {2, 3}};
  EXPECT_EQ(cs, expected);
}

TEST(Backoff, DelaysStayJitteredAndDoubleToTheCap) {
  Backoff b(1'000, 8'000, 42);
  // Draw k: uniform in [current/2, current] with current = min * 2^k,
  // saturating at the cap.
  std::int64_t expected_current = 1'000;
  for (int k = 0; k < 10; ++k) {
    EXPECT_EQ(b.current(), expected_current) << "k" << k;
    const std::int64_t d = b.next();
    EXPECT_GE(d, expected_current / 2) << "k" << k;
    EXPECT_LE(d, expected_current) << "k" << k;
    expected_current = std::min<std::int64_t>(expected_current * 2, 8'000);
  }
  EXPECT_EQ(b.current(), 8'000);
}

TEST(Backoff, ResetSnapsBackToTheMinimum) {
  Backoff b(500, 64'000, 7);
  for (int k = 0; k < 5; ++k) (void)b.next();
  EXPECT_GT(b.current(), 500);
  b.reset();
  EXPECT_EQ(b.current(), 500);
  const std::int64_t d = b.next();
  EXPECT_GE(d, 250);
  EXPECT_LE(d, 500);
}

TEST(Backoff, DeterministicForAFixedSeed) {
  Backoff a(1'000, 32'000, 99), b(1'000, 32'000, 99), c(1'000, 32'000, 100);
  bool diverged = false;
  for (int k = 0; k < 8; ++k) {
    const std::int64_t da = a.next();
    EXPECT_EQ(da, b.next()) << "k" << k;
    if (da != c.next()) diverged = true;
  }
  EXPECT_TRUE(diverged);  // different seed, different jitter stream
}

TEST(Backoff, ZeroedConfigCannotSpinLoop) {
  Backoff b(0, 0, 1);
  EXPECT_EQ(b.min(), 1);
  EXPECT_EQ(b.max(), 1);
  for (int k = 0; k < 4; ++k) EXPECT_GE(b.next(), 1);
  // An inverted range is repaired, not UB: the cap rises to the minimum.
  Backoff inverted(10'000, 100, 1);
  EXPECT_EQ(inverted.max(), 10'000);
  const std::int64_t d = inverted.next();
  EXPECT_GE(d, 5'000);
  EXPECT_LE(d, 10'000);
}

}  // namespace
}  // namespace twostep::util
