// Tests for the wire codec: exhaustive round-trips, varint edge cases, and
// a decode fuzzer (malformed input must yield nullopt, never UB).
#include <gtest/gtest.h>

#include "codec/codec.hpp"
#include "util/rng.hpp"

namespace twostep::codec {
namespace {

using consensus::Value;

std::vector<core::Message> sample_messages() {
  return {
      core::Message{core::ProposeMsg{Value{42}}},
      core::Message{core::ProposeMsg{Value{-7}}},
      core::Message{core::OneAMsg{0}},
      core::Message{core::OneAMsg{1'000'000'007}},
      core::Message{core::OneBMsg{5, 0, Value{9}, 3, Value::bottom(), Value{1}}},
      core::Message{core::OneBMsg{7, 7, Value::bottom(), consensus::kNoProcess,
                                  Value{12}, Value::bottom()}},
      core::Message{core::TwoAMsg{3, Value{11}}},
      core::Message{core::TwoBMsg{0, Value{8}}},
      core::Message{core::TwoBMsg{999, Value{-999}}},
      core::Message{core::DecideMsg{Value{123456789}}},
  };
}

TEST(Codec, RoundTripsEveryMessageKind) {
  for (const auto& m : sample_messages()) {
    const auto bytes = encode(m);
    ASSERT_FALSE(bytes.empty());
    const auto back = decode(bytes);
    ASSERT_TRUE(back.has_value()) << core::to_string(m);
    EXPECT_EQ(*back, m) << core::to_string(m);
  }
}

TEST(Codec, VarintExtremes) {
  Writer w;
  const std::int64_t extremes[] = {0, 1, -1, 63, 64, -64, -65,
                                   std::numeric_limits<std::int64_t>::max(),
                                   std::numeric_limits<std::int64_t>::min()};
  for (const std::int64_t v : extremes) w.put_i64(v);
  Reader r{w.bytes()};
  for (const std::int64_t v : extremes) EXPECT_EQ(r.get_i64(), v);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, ValueBottomRoundTrips) {
  Writer w;
  w.put_value(Value::bottom());
  w.put_value(Value{0});
  Reader r{w.bytes()};
  EXPECT_TRUE(r.get_value().is_bottom());
  EXPECT_EQ(r.get_value(), Value{0});
  EXPECT_TRUE(r.ok());
}

TEST(Codec, SmallMessagesAreCompact) {
  // A 2B(0, v) — the hot fast-path message — must be a handful of bytes.
  const auto bytes = encode(core::Message{core::TwoBMsg{0, Value{7}}});
  EXPECT_LE(bytes.size(), 4u);
}

TEST(Codec, RejectsUnknownTag) {
  EXPECT_FALSE(decode(std::vector<std::uint8_t>{0x7F}).has_value());
  EXPECT_FALSE(decode(std::vector<std::uint8_t>{0}).has_value());
}

TEST(Codec, RejectsEmptyAndTruncated) {
  EXPECT_FALSE(decode({}).has_value());
  for (const auto& m : sample_messages()) {
    const auto bytes = encode(m);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      const std::span<const std::uint8_t> prefix{bytes.data(), cut};
      EXPECT_FALSE(decode(prefix).has_value()) << core::to_string(m) << " cut=" << cut;
    }
  }
}

TEST(Codec, RejectsTrailingGarbage) {
  for (const auto& m : sample_messages()) {
    auto bytes = encode(m);
    bytes.push_back(0x00);
    EXPECT_FALSE(decode(bytes).has_value()) << core::to_string(m);
  }
}

TEST(Codec, RejectsOversizeVarint) {
  // 11 continuation bytes: shift overruns 63 and must fail cleanly.
  std::vector<std::uint8_t> bytes{2 /*OneA*/};
  for (int i = 0; i < 11; ++i) bytes.push_back(0x80);
  bytes.push_back(0x01);
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Codec, DecodeFuzzNeverCrashes) {
  util::Rng rng{0xC0DEC};
  int accepted = 0;
  for (int iter = 0; iter < 20000; ++iter) {
    std::vector<std::uint8_t> bytes(rng.next_below(24));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
    const auto m = decode(bytes);
    if (!m) continue;
    ++accepted;
    // Anything accepted must round-trip as a message (the byte form need
    // not be canonical: non-minimal varints are accepted).
    const auto again = decode(encode(*m));
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, *m);
  }
  // Random bytes occasionally form valid messages; that is fine.
  EXPECT_GE(accepted, 0);
}

TEST(Codec, EncodeIsDeterministic) {
  for (const auto& m : sample_messages()) EXPECT_EQ(encode(m), encode(m));
}

// ---- every other wire-crossing type: RSM slots, Fast Paxos, client frames -

std::vector<rsm::SlotMsg> sample_slot_messages() {
  std::vector<rsm::SlotMsg> out;
  const std::int32_t slots[] = {0, 1, 7, 1'000'000, std::numeric_limits<std::int32_t>::max()};
  std::int32_t cfg = 0;
  for (const std::int32_t slot : slots)
    for (const auto& inner : sample_messages()) out.push_back({slot, cfg++ % 3, inner});
  return out;
}

std::vector<fastpaxos::Message> sample_fastpaxos_messages() {
  return {
      fastpaxos::Message{fastpaxos::FastProposeMsg{Value{42}}},
      fastpaxos::Message{fastpaxos::FastProposeMsg{Value::bottom()}},
      fastpaxos::Message{fastpaxos::PrepareMsg{0}},
      fastpaxos::Message{fastpaxos::PrepareMsg{1'000'000'007}},
      fastpaxos::Message{fastpaxos::PromiseMsg{5, -1, Value::bottom(), Value{9}}},
      fastpaxos::Message{fastpaxos::PromiseMsg{3, 0, Value{11}, Value::bottom()}},
      fastpaxos::Message{fastpaxos::AcceptMsg{2, Value{-5}}},
      fastpaxos::Message{fastpaxos::AcceptedMsg{0, Value{8}}},
      fastpaxos::Message{fastpaxos::AcceptedMsg{77, Value{123456789}}},
  };
}

std::vector<ClientRequest> sample_client_requests() {
  return {{0, 0, 0},
          {1, 42, 0},
          {999, -7, 1},
          {3, 5, std::numeric_limits<std::int64_t>::max()},
          {std::numeric_limits<std::int64_t>::max(), 1, -12345}};
}

std::vector<ClientReply> sample_client_replies() {
  return {{0, 0, -1, true},
          {1, 42, 0, true},
          {7, (std::int64_t{3} << 40) | 17, 12, true},
          {9, std::numeric_limits<std::int64_t>::min(), -1, false}};
}

TEST(Codec, SlotMessagesRoundTrip) {
  for (const auto& m : sample_slot_messages()) {
    const auto bytes = encode(m);
    const auto back = decode_slot(bytes);
    ASSERT_TRUE(back.has_value()) << "slot=" << m.slot << " " << core::to_string(m.inner);
    EXPECT_EQ(*back, m);
  }
}

TEST(Codec, FastPaxosMessagesRoundTrip) {
  for (const auto& m : sample_fastpaxos_messages()) {
    const auto bytes = encode(m);
    const auto back = decode_fastpaxos(bytes);
    ASSERT_TRUE(back.has_value()) << "variant index " << m.index();
    EXPECT_EQ(*back, m);
  }
}

TEST(Codec, ClientFramesRoundTrip) {
  for (const auto& m : sample_client_requests()) {
    const auto back = decode_client_request(encode(m));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, m);
  }
  for (const auto& m : sample_client_replies()) {
    const auto back = decode_client_reply(encode(m));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, m);
  }
}

TEST(Codec, SlotDecoderRejectsTruncationAndGarbage) {
  // A representative sample (the full cross-product is slow under ASan).
  const rsm::SlotMsg m{42, 2, core::Message{core::OneBMsg{5, 0, Value{9}, 3, Value::bottom(),
                                                          Value{1}}}};
  auto bytes = encode(m);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut)
    EXPECT_FALSE(decode_slot({bytes.data(), cut}).has_value()) << "cut=" << cut;
  bytes.push_back(0x00);
  EXPECT_FALSE(decode_slot(bytes).has_value());
  // Slot outside int32 must be rejected even when the varint itself parses.
  Writer w;
  w.put_i64(std::int64_t{1} << 40);
  w.put_i64(0);
  auto oversize = std::move(w).take();
  const auto inner = encode(m.inner);
  oversize.insert(oversize.end(), inner.begin(), inner.end());
  EXPECT_FALSE(decode_slot(oversize).has_value());
  // Negative config version is rejected the same way.
  Writer w2;
  w2.put_i64(3);
  w2.put_i64(-1);
  auto badcfg = std::move(w2).take();
  badcfg.insert(badcfg.end(), inner.begin(), inner.end());
  EXPECT_FALSE(decode_slot(badcfg).has_value());
}

TEST(Codec, FastPaxosDecoderRejectsTruncationAndGarbage) {
  for (const auto& m : sample_fastpaxos_messages()) {
    auto bytes = encode(m);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut)
      EXPECT_FALSE(decode_fastpaxos({bytes.data(), cut}).has_value())
          << "variant " << m.index() << " cut=" << cut;
    bytes.push_back(0x00);
    EXPECT_FALSE(decode_fastpaxos(bytes).has_value()) << "variant " << m.index();
  }
  EXPECT_FALSE(decode_fastpaxos(std::vector<std::uint8_t>{0x7F}).has_value());
  EXPECT_FALSE(decode_fastpaxos(std::vector<std::uint8_t>{0}).has_value());
}

TEST(Codec, ClientFrameDecodersRejectTruncationAndGarbage) {
  for (const auto& m : sample_client_requests()) {
    auto bytes = encode(m);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut)
      EXPECT_FALSE(decode_client_request({bytes.data(), cut}).has_value());
    bytes.push_back(0x00);
    EXPECT_FALSE(decode_client_request(bytes).has_value());
  }
  for (const auto& m : sample_client_replies()) {
    auto bytes = encode(m);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut)
      EXPECT_FALSE(decode_client_reply({bytes.data(), cut}).has_value());
    bytes.push_back(0x00);
    EXPECT_FALSE(decode_client_reply(bytes).has_value());
  }
  // An ok byte other than 0/1 is not a valid reply.
  {
    const auto good = encode(ClientReply{1, 2, 3, true});
    auto bytes = good;
    bytes.back() = 2;
    EXPECT_FALSE(decode_client_reply(bytes).has_value());
  }
}

// ---- EPaxos wire frames (geo / leaderless path) ----

std::vector<epaxos::Message> sample_epaxos_messages() {
  const epaxos::InstanceId a{0, 0};
  const epaxos::InstanceId b{2, 7};
  const epaxos::DepSet deps{a, b, epaxos::InstanceId{1, 1'000'000}};
  return {
      epaxos::Message{epaxos::PreAcceptMsg{a, 0, {5, 42}, {}, 0}},
      epaxos::Message{epaxos::PreAcceptMsg{
          b, 4, {-9, std::numeric_limits<std::int64_t>::min()}, deps, 77}},
      epaxos::Message{epaxos::PreAcceptReplyMsg{a, 0, {}, 0, false}},
      epaxos::Message{epaxos::PreAcceptReplyMsg{b, 7, deps, 123456789, true}},
      epaxos::Message{epaxos::AcceptMsg{a, 0, {1, 2}, {}, 3}},
      epaxos::Message{epaxos::AcceptMsg{b, 1'000'000'007, {0, epaxos::kNoOpPayload}, deps, 9}},
      epaxos::Message{epaxos::AcceptReplyMsg{a, 0}},
      epaxos::Message{epaxos::AcceptReplyMsg{b, 42}},
      epaxos::Message{epaxos::CommitMsg{a, {7, 8}, deps, 2}},
      epaxos::Message{epaxos::CommitMsg{
          epaxos::InstanceId{4, std::numeric_limits<std::int32_t>::max()}, {0, 0}, {}, 0}},
      epaxos::Message{epaxos::PrepareMsg{a, 1}},
      epaxos::Message{epaxos::PrepareMsg{b, 1'000'000'007}},
      epaxos::Message{epaxos::PrepareReplyMsg{a, 0, epaxos::Status::kNone, {}, {}, 0}},
      epaxos::Message{epaxos::PrepareReplyMsg{b, 5, epaxos::Status::kCommitted, {3, 4},
                                              deps, 11}},
      epaxos::Message{epaxos::PrepareReplyMsg{a, 2, epaxos::Status::kExecuted,
                                              {0, epaxos::kNoOpPayload}, {b}, 1}},
  };
}

TEST(Codec, EPaxosMessagesRoundTrip) {
  for (const auto& m : sample_epaxos_messages()) {
    const auto bytes = encode(m);
    const auto back = decode_epaxos(bytes);
    ASSERT_TRUE(back.has_value()) << "variant index " << m.index();
    EXPECT_EQ(*back, m);
  }
}

TEST(Codec, EPaxosDecoderRejectsTruncationAndGarbage) {
  for (const auto& m : sample_epaxos_messages()) {
    auto bytes = encode(m);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut)
      EXPECT_FALSE(decode_epaxos({bytes.data(), cut}).has_value())
          << "variant " << m.index() << " cut=" << cut;
    bytes.push_back(0x00);
    EXPECT_FALSE(decode_epaxos(bytes).has_value()) << "variant " << m.index();
  }
  EXPECT_FALSE(decode_epaxos(std::vector<std::uint8_t>{0x7F}).has_value());
  EXPECT_FALSE(decode_epaxos(std::vector<std::uint8_t>{0}).has_value());
}

TEST(Codec, EPaxosDecoderRejectsSemanticGarbage) {
  // The encoder will happily serialise an invalid instance id; the decoder
  // must not let one back in — neither as the subject nor as a dependency.
  EXPECT_FALSE(decode_epaxos(encode(epaxos::Message{
                                 epaxos::PrepareMsg{{consensus::kNoProcess, 0}, 1}}))
                   .has_value());
  EXPECT_FALSE(decode_epaxos(encode(epaxos::Message{epaxos::PrepareMsg{{0, -1}, 1}}))
                   .has_value());
  EXPECT_FALSE(decode_epaxos(encode(epaxos::Message{epaxos::PreAcceptMsg{
                                 {0, 0}, 0, {1, 2}, {epaxos::InstanceId{-1, 3}}, 0}}))
                   .has_value());
  // A `changed` byte other than 0/1 is not a valid pre-accept reply.  The
  // flag is the frame's last byte.
  {
    auto bytes = encode(epaxos::Message{epaxos::PreAcceptReplyMsg{{0, 0}, 0, {}, 0, true}});
    ASSERT_EQ(bytes.back(), 1);
    bytes.back() = 2;
    EXPECT_FALSE(decode_epaxos(bytes).has_value());
  }
  // A status byte beyond kExecuted is not a valid prepare reply.  With a
  // zero instance and ballot the status lands at a fixed offset: tag,
  // replica, index, ballot, then status.
  {
    auto bytes = encode(epaxos::Message{epaxos::PrepareReplyMsg{
        {0, 0}, 0, epaxos::Status::kExecuted, {0, 0}, {}, 0}});
    ASSERT_EQ(bytes[4], static_cast<std::uint8_t>(epaxos::Status::kExecuted));
    bytes[4] = static_cast<std::uint8_t>(epaxos::Status::kExecuted) + 1;
    EXPECT_FALSE(decode_epaxos(bytes).has_value());
  }
}

TEST(Codec, EPaxosDecoderSurvivesBitFlips) {
  // Single-bit corruption of a valid frame either decodes to *some* message
  // (which must then round-trip) or is rejected — never UB.
  for (const auto& m : sample_epaxos_messages()) {
    const auto bytes = encode(m);
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      for (int bit = 0; bit < 8; ++bit) {
        auto flipped = bytes;
        flipped[i] = static_cast<std::uint8_t>(flipped[i] ^ (1u << bit));
        if (const auto back = decode_epaxos(flipped))
          EXPECT_EQ(*decode_epaxos(encode(*back)), *back);
      }
    }
  }
}

// ---- batch sidecar frames (N3 saturation path) ----

std::vector<rsm::Msg> sample_batch_messages() {
  const rsm::Command handle = (std::int64_t{2} << 40) | (std::int64_t{1} << 39) | 7;
  return {
      rsm::Msg{rsm::BatchContentMsg{handle, {}}},
      rsm::Msg{rsm::BatchContentMsg{handle, {0}}},
      rsm::Msg{rsm::BatchContentMsg{handle, {1, 2, 3, 4, 5, 6, 7, 8}}},
      rsm::Msg{rsm::BatchContentMsg{(std::int64_t{1} << 39) | 1,
                                    {(std::int64_t{1} << 39) - 1, 0, 42}}},
      rsm::Msg{rsm::BatchFetchMsg{handle}},
      rsm::Msg{rsm::BatchFetchMsg{(std::int64_t{1} << 39) | 999}},
  };
}

TEST(Codec, BatchMessagesRoundTrip) {
  for (const auto& m : sample_batch_messages()) {
    const auto bytes = encode_batch(m);
    ASSERT_FALSE(bytes.empty());
    const auto back = decode_batch(bytes);
    ASSERT_TRUE(back.has_value()) << "variant " << m.index();
    EXPECT_EQ(*back, m);
  }
}

TEST(Codec, BatchDecoderRejectsTruncationAndGarbage) {
  for (const auto& m : sample_batch_messages()) {
    auto bytes = encode_batch(m);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut)
      EXPECT_FALSE(decode_batch({bytes.data(), cut}).has_value())
          << "variant " << m.index() << " cut=" << cut;
    bytes.push_back(0x00);
    EXPECT_FALSE(decode_batch(bytes).has_value()) << "variant " << m.index();
  }
  EXPECT_FALSE(decode_batch({}).has_value());
  EXPECT_FALSE(decode_batch(std::vector<std::uint8_t>{0x7F}).has_value());
  EXPECT_FALSE(decode_batch(std::vector<std::uint8_t>{0}).has_value());
  // A payload count pointing past the buffer must fail cleanly, not read it.
  Writer w;
  w.put_i64((std::int64_t{1} << 39) | 1);
  w.put_i64(1'000'000);
  auto oversize = std::move(w).take();
  oversize.insert(oversize.begin(), 1);  // BatchContent tag
  EXPECT_FALSE(decode_batch(oversize).has_value());
}

TEST(Codec, BatchDecoderSurvivesFuzz) {
  util::Rng rng{0xBA7C4};
  for (int iter = 0; iter < 20000; ++iter) {
    std::vector<std::uint8_t> bytes(rng.next_below(40));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
    if (const auto m = decode_batch(bytes)) EXPECT_EQ(*decode_batch(encode_batch(*m)), *m);
  }
}

// ---- reconfiguration + failure-detector frames ----

std::vector<rsm::Msg> sample_config_messages() {
  const rsm::Command handle = (std::int64_t{3} << 38) | 7;  // bits 39+38 set
  return {
      rsm::Msg{rsm::ConfigChangeMsg{
          handle, {rsm::ConfigChange::Op::kAdd, 5, "replica5.example.com", 7105}}},
      rsm::Msg{rsm::ConfigChangeMsg{handle, {rsm::ConfigChange::Op::kAdd, 0, "", 0}}},
      rsm::Msg{rsm::ConfigChangeMsg{
          (std::int64_t{3} << 38) | 9999, {rsm::ConfigChange::Op::kRemove, 4, "", 0}}},
      rsm::Msg{rsm::ConfigFetchMsg{handle}},
      rsm::Msg{rsm::ConfigFetchMsg{(std::int64_t{3} << 38) | 1}},
  };
}

TEST(Codec, ConfigMessagesRoundTrip) {
  for (const auto& m : sample_config_messages()) {
    const auto bytes = encode_config(m);
    ASSERT_FALSE(bytes.empty());
    const auto back = decode_config(bytes);
    ASSERT_TRUE(back.has_value()) << "variant " << m.index();
    EXPECT_EQ(*back, m);
  }
}

TEST(Codec, ConfigDecoderRejectsTruncationAndGarbage) {
  for (const auto& m : sample_config_messages()) {
    auto bytes = encode_config(m);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut)
      EXPECT_FALSE(decode_config({bytes.data(), cut}).has_value())
          << "variant " << m.index() << " cut=" << cut;
    bytes.push_back(0x00);
    EXPECT_FALSE(decode_config(bytes).has_value()) << "variant " << m.index();
  }
  EXPECT_FALSE(decode_config({}).has_value());
  EXPECT_FALSE(decode_config(std::vector<std::uint8_t>{0x7F}).has_value());
  EXPECT_FALSE(decode_config(std::vector<std::uint8_t>{0}).has_value());
  // An op byte outside the enum must fail, not reinterpret.
  {
    Writer w;
    w.put_u8(1);  // ConfigChange tag
    w.put_i64((std::int64_t{3} << 38) | 7);
    w.put_u8(2);  // op: kRemove is 1, 2 is garbage
    w.put_i64(5);
    w.put_string("h");
    w.put_i64(80);
    EXPECT_FALSE(decode_config(std::move(w).take()).has_value());
  }
  // A host length pointing past the buffer must fail cleanly, not read it.
  {
    Writer w;
    w.put_u8(1);
    w.put_i64((std::int64_t{3} << 38) | 7);
    w.put_u8(0);
    w.put_i64(5);
    w.put_i64(1'000'000);  // string length
    EXPECT_FALSE(decode_config(std::move(w).take()).has_value());
  }
}

TEST(Codec, HeartbeatAndHandoverRoundTrip) {
  for (const auto& m : {Heartbeat{0, 0}, Heartbeat{5, 3},
                        Heartbeat{std::numeric_limits<consensus::ProcessId>::max(),
                                  std::numeric_limits<std::int32_t>::max()}}) {
    const auto back = decode_heartbeat(encode(m));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, m);
  }
  for (const auto& m : {Handover{0, 0}, Handover{2, 1},
                        Handover{std::numeric_limits<consensus::ProcessId>::max(),
                                 std::numeric_limits<std::int32_t>::max()}}) {
    const auto back = decode_handover(encode(m));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, m);
  }
}

TEST(Codec, CatchupRoundTrip) {
  for (const auto& m : {Catchup{0, 0}, Catchup{5, 1234567},
                        Catchup{std::numeric_limits<consensus::ProcessId>::max(),
                                std::numeric_limits<std::int64_t>::max()}}) {
    const auto back = decode_catchup(encode(m));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, m);
  }
}

TEST(Codec, CatchupRejectsTruncationAndGarbage) {
  auto bytes = encode(Catchup{3, 98765});
  for (std::size_t cut = 0; cut < bytes.size(); ++cut)
    EXPECT_FALSE(decode_catchup({bytes.data(), cut}).has_value()) << "cut=" << cut;
  bytes.push_back(0x00);
  EXPECT_FALSE(decode_catchup(bytes).has_value());
  // Negative sender or applied prefix: the writer would never produce them.
  for (const auto& [from, applied] :
       {std::pair<std::int64_t, std::int64_t>{-1, 0},
        {std::int64_t{1} << 40, 0},
        {0, -1}}) {
    Writer w;
    w.put_i64(from);
    w.put_i64(applied);
    EXPECT_FALSE(decode_catchup(std::move(w).take()).has_value())
        << from << " " << applied;
  }
}

TEST(Codec, HeartbeatAndHandoverRejectTruncationAndGarbage) {
  {
    auto bytes = encode(Heartbeat{3, 12345});
    for (std::size_t cut = 0; cut < bytes.size(); ++cut)
      EXPECT_FALSE(decode_heartbeat({bytes.data(), cut}).has_value()) << "cut=" << cut;
    bytes.push_back(0x00);
    EXPECT_FALSE(decode_heartbeat(bytes).has_value());
  }
  {
    auto bytes = encode(Handover{3, 12345});
    for (std::size_t cut = 0; cut < bytes.size(); ++cut)
      EXPECT_FALSE(decode_handover({bytes.data(), cut}).has_value()) << "cut=" << cut;
    bytes.push_back(0x00);
    EXPECT_FALSE(decode_handover(bytes).has_value());
  }
  // Negative sender or version: a varint the writer would never produce.
  for (const std::int64_t from : {std::int64_t{-1}, std::int64_t{1} << 40}) {
    Writer w;
    w.put_i64(from);
    w.put_i64(0);
    const auto bytes = std::move(w).take();
    EXPECT_FALSE(decode_heartbeat(bytes).has_value()) << from;
    EXPECT_FALSE(decode_handover(bytes).has_value()) << from;
  }
  {
    Writer w;
    w.put_i64(1);
    w.put_i64(-3);
    const auto bytes = std::move(w).take();
    EXPECT_FALSE(decode_heartbeat(bytes).has_value());
    EXPECT_FALSE(decode_handover(bytes).has_value());
  }
}

TEST(Codec, ConfigCommandRoundTrip) {
  const std::vector<ConfigCommand> samples = {
      {0, {rsm::ConfigChange::Op::kAdd, 3, "127.0.0.1", 7103}},
      {1, {rsm::ConfigChange::Op::kRemove, 4, "", 0}},
      {std::numeric_limits<std::int64_t>::max(),
       {rsm::ConfigChange::Op::kAdd, std::numeric_limits<consensus::ProcessId>::max(),
        std::string(300, 'h'), 65535}},
  };
  for (const auto& m : samples) {
    const auto back = decode_config_command(encode(m));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, m);
  }
}

TEST(Codec, ConfigCommandRejectsTruncationAndGarbage) {
  auto bytes = encode(ConfigCommand{7, {rsm::ConfigChange::Op::kAdd, 5, "host", 9000}});
  for (std::size_t cut = 0; cut < bytes.size(); ++cut)
    EXPECT_FALSE(decode_config_command({bytes.data(), cut}).has_value()) << "cut=" << cut;
  bytes.push_back(0x00);
  EXPECT_FALSE(decode_config_command(bytes).has_value());
  // Negative correlation id, out-of-range port, bad op byte.
  {
    Writer w;
    w.put_i64(-1);
    w.put_u8(0);
    w.put_i64(5);
    w.put_string("h");
    w.put_i64(80);
    EXPECT_FALSE(decode_config_command(std::move(w).take()).has_value());
  }
  {
    Writer w;
    w.put_i64(1);
    w.put_u8(0);
    w.put_i64(5);
    w.put_string("h");
    w.put_i64(70'000);
    EXPECT_FALSE(decode_config_command(std::move(w).take()).has_value());
  }
  {
    Writer w;
    w.put_i64(1);
    w.put_u8(9);
    w.put_i64(5);
    w.put_string("h");
    w.put_i64(80);
    EXPECT_FALSE(decode_config_command(std::move(w).take()).has_value());
  }
}

// ---- trace-context propagation and stats scrape frames (PR 6) ----

std::vector<obs::TraceContext> sample_traces() {
  return {{1, 0, 0},
          {42, 7, 1'000'000},
          {(std::uint64_t{1000} << 40) | 3, (std::uint64_t{2} << 40) | 1, 123'456'789},
          {std::numeric_limits<std::uint64_t>::max(),
           std::numeric_limits<std::uint64_t>::max(),
           std::numeric_limits<std::int64_t>::max()}};
}

std::vector<TracedFrame> sample_traced_frames() {
  std::vector<TracedFrame> out;
  for (const auto& trace : sample_traces()) {
    out.push_back(
        {4, trace, encode(rsm::SlotMsg{3, 0, core::Message{core::TwoBMsg{0, Value{8}}}})});
    out.push_back({5, trace, encode(ClientRequest{1, 42, 0, trace})});
    out.push_back({9, trace, {}});  // empty inner payload is legal
  }
  return out;
}

TEST(Codec, TraceContextRoundTrips) {
  // Both the inactive default and every active sample, back to back in one
  // buffer (the runtime appends a trace after regular fields).
  Writer w;
  put_trace(w, obs::TraceContext{});
  for (const auto& t : sample_traces()) put_trace(w, t);
  Reader r{w.bytes()};
  EXPECT_FALSE(get_trace(r).active());
  for (const auto& t : sample_traces()) {
    const obs::TraceContext back = get_trace(r);
    EXPECT_EQ(back.trace_id, t.trace_id);
    EXPECT_EQ(back.parent_span, t.parent_span);
    EXPECT_EQ(back.origin_us, t.origin_us);
  }
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, UntracedClientRequestPaysOneByte) {
  // The documented null-overhead guarantee: an inactive context is a
  // single absent byte; {9, 8, 7} costs exactly three more varint bytes.
  const ClientRequest untraced{1, 42, 0, {}};
  ClientRequest traced = untraced;
  traced.trace = {9, 8, 7};
  EXPECT_EQ(encode(traced).size(), encode(untraced).size() + 3);
  const auto back = decode_client_request(encode(traced));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, traced);
}

TEST(Codec, ClientRequestRejectsBadTraceFlagAndPresentButInactiveTrace) {
  // Flag byte outside {0, 1}.
  auto bytes = encode(ClientRequest{1, 42, 0, {}});
  bytes.back() = 2;
  EXPECT_FALSE(decode_client_request(bytes).has_value());
  // Flag says "trace follows" but the context is the inactive default.
  Writer w;
  w.put_i64(1);
  w.put_i64(42);
  w.put_i64(0);
  w.put_u8(1);
  put_trace(w, obs::TraceContext{});
  EXPECT_FALSE(decode_client_request(std::move(w).take()).has_value());
}

TEST(Codec, TracedFramesRoundTrip) {
  for (const auto& m : sample_traced_frames()) {
    const auto back = decode_traced(encode(m));
    ASSERT_TRUE(back.has_value()) << "inner_kind=" << int(m.inner_kind);
    EXPECT_EQ(*back, m);
  }
}

TEST(Codec, TracedFrameRejectsInactiveContextAndTruncatedHeaders) {
  // A wrapped frame with no active trace would never be sent — reject it.
  EXPECT_FALSE(decode_traced(encode(TracedFrame{4, obs::TraceContext{}, {1, 2, 3}})).has_value());
  // So would inner kind 0 (no such FrameKind).
  EXPECT_FALSE(decode_traced(encode(TracedFrame{0, {1, 2, 3}, {9}})).has_value());
  // An empty-inner frame is pure header, so every strict prefix truncates
  // the kind byte or a trace varint and must fail.
  for (const auto& trace : sample_traces()) {
    const auto bytes = encode(TracedFrame{4, trace, {}});
    for (std::size_t cut = 0; cut < bytes.size(); ++cut)
      EXPECT_FALSE(decode_traced({bytes.data(), cut}).has_value()) << "cut=" << cut;
  }
}

TEST(Codec, TracedFrameTreatsTheRemainderAsTheInnerPayload) {
  // decode_traced does not parse the inner payload — the nested decoder
  // enforces exhaustion — so appended bytes simply extend `inner`.
  const TracedFrame m{4, {1, 2, 3}, {7, 8}};
  auto bytes = encode(m);
  bytes.push_back(0x00);
  const auto back = decode_traced(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->inner, (std::vector<std::uint8_t>{7, 8, 0x00}));
}

TEST(Codec, StatsFramesRoundTrip) {
  for (const std::int64_t id : {std::int64_t{0}, std::int64_t{7},
                                std::numeric_limits<std::int64_t>::max()}) {
    const auto req = decode_stats_request(encode(StatsRequest{id}));
    ASSERT_TRUE(req.has_value());
    EXPECT_EQ(*req, (StatsRequest{id}));
  }
  const std::vector<StatsReply> replies = {
      {0, ""},
      {1, "{\"schema\": \"twostep-stats/1\"}"},
      {7, std::string(4096, 'x') + "\"\\\n"},  // embedded quotes/escapes survive
  };
  for (const auto& m : replies) {
    const auto back = decode_stats_reply(encode(m));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, m);
  }
}

TEST(Codec, StatsDecodersRejectTruncationAndGarbage) {
  {
    auto bytes = encode(StatsRequest{12345});
    for (std::size_t cut = 0; cut < bytes.size(); ++cut)
      EXPECT_FALSE(decode_stats_request({bytes.data(), cut}).has_value());
    bytes.push_back(0x00);
    EXPECT_FALSE(decode_stats_request(bytes).has_value());
  }
  {
    auto bytes = encode(StatsReply{1, "{\"node\": 0}"});
    for (std::size_t cut = 0; cut < bytes.size(); ++cut)
      EXPECT_FALSE(decode_stats_reply({bytes.data(), cut}).has_value()) << "cut=" << cut;
    bytes.push_back(0x00);
    EXPECT_FALSE(decode_stats_reply(bytes).has_value());
    // A string length pointing past the buffer must fail cleanly.
    Writer w;
    w.put_i64(1);
    w.put_i64(1'000'000);
    EXPECT_FALSE(decode_stats_reply(std::move(w).take()).has_value());
  }
}

TEST(Codec, SnapshotFramesRoundTrip) {
  const auto offer = decode_snapshot_offer(encode(SnapshotOffer{1234, 987654}));
  ASSERT_TRUE(offer.has_value());
  EXPECT_EQ(*offer, (SnapshotOffer{1234, 987654}));

  const auto req = decode_snapshot_request(encode(SnapshotRequest{1234, 262144}));
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(*req, (SnapshotRequest{1234, 262144}));

  SnapshotChunk chunk;
  chunk.floor = 1234;
  chunk.offset = 512;
  chunk.total_bytes = 515;
  chunk.crc = 0xCBF43926;
  chunk.data = {1, 2, 3};
  const auto back = decode_snapshot_chunk(encode(chunk));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, chunk);

  SnapshotChunk empty;  // a zero-byte chunk frames too (total 0, no data)
  const auto empty_back = decode_snapshot_chunk(encode(empty));
  ASSERT_TRUE(empty_back.has_value());
  EXPECT_EQ(*empty_back, empty);
}

TEST(Codec, SnapshotDecodersRejectTruncationGarbageAndBadGeometry) {
  {
    auto bytes = encode(SnapshotOffer{9, 100});
    for (std::size_t cut = 0; cut < bytes.size(); ++cut)
      EXPECT_FALSE(decode_snapshot_offer({bytes.data(), cut}).has_value());
    bytes.push_back(0x00);
    EXPECT_FALSE(decode_snapshot_offer(bytes).has_value());
  }
  {
    auto bytes = encode(SnapshotRequest{9, 100});
    for (std::size_t cut = 0; cut < bytes.size(); ++cut)
      EXPECT_FALSE(decode_snapshot_request({bytes.data(), cut}).has_value());
    bytes.push_back(0x00);
    EXPECT_FALSE(decode_snapshot_request(bytes).has_value());
  }
  {
    SnapshotChunk chunk;
    chunk.floor = 9;
    chunk.offset = 4;
    chunk.total_bytes = 8;
    chunk.data = {1, 2, 3, 4};
    auto bytes = encode(chunk);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut)
      EXPECT_FALSE(decode_snapshot_chunk({bytes.data(), cut}).has_value()) << "cut=" << cut;
    bytes.push_back(0x00);
    EXPECT_FALSE(decode_snapshot_chunk(bytes).has_value());
    // A chunk whose bytes spill past its own total_bytes is nonsense the
    // transfer logic must never see.
    chunk.total_bytes = 5;  // offset 4 + 4 data bytes > 5
    EXPECT_FALSE(decode_snapshot_chunk(encode(chunk)).has_value());
    // Negative geometry is rejected wholesale.
    chunk.total_bytes = 8;
    chunk.offset = -1;
    EXPECT_FALSE(decode_snapshot_chunk(encode(chunk)).has_value());
    // A data length pointing past the buffer must fail cleanly.
    Writer w;
    w.put_i64(1);   // floor
    w.put_i64(0);   // offset
    w.put_i64(10);  // total
    w.put_i64(0);   // crc
    w.put_i64(1'000'000);
    EXPECT_FALSE(decode_snapshot_chunk(std::move(w).take()).has_value());
  }
}

TEST(Codec, AllDecodersSurviveTheSameFuzzStream) {
  // Malformed input must yield nullopt for every decoder, never UB; anything
  // accepted must round-trip through its own encoder (run under ASan/UBSan
  // in CI).
  util::Rng rng{0xFEEDC0DE};
  for (int iter = 0; iter < 20000; ++iter) {
    std::vector<std::uint8_t> bytes(rng.next_below(32));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
    if (const auto m = decode_slot(bytes)) EXPECT_EQ(*decode_slot(encode(*m)), *m);
    if (const auto m = decode_fastpaxos(bytes)) EXPECT_EQ(*decode_fastpaxos(encode(*m)), *m);
    if (const auto m = decode_epaxos(bytes)) EXPECT_EQ(*decode_epaxos(encode(*m)), *m);
    if (const auto m = decode_client_request(bytes))
      EXPECT_EQ(*decode_client_request(encode(*m)), *m);
    if (const auto m = decode_client_reply(bytes))
      EXPECT_EQ(*decode_client_reply(encode(*m)), *m);
    if (const auto m = decode_snapshot_offer(bytes))
      EXPECT_EQ(*decode_snapshot_offer(encode(*m)), *m);
    if (const auto m = decode_snapshot_request(bytes))
      EXPECT_EQ(*decode_snapshot_request(encode(*m)), *m);
    if (const auto m = decode_snapshot_chunk(bytes))
      EXPECT_EQ(*decode_snapshot_chunk(encode(*m)), *m);
    if (const auto m = decode_config(bytes)) EXPECT_EQ(*decode_config(encode_config(*m)), *m);
    if (const auto m = decode_heartbeat(bytes)) EXPECT_EQ(*decode_heartbeat(encode(*m)), *m);
    if (const auto m = decode_handover(bytes)) EXPECT_EQ(*decode_handover(encode(*m)), *m);
    if (const auto m = decode_catchup(bytes)) EXPECT_EQ(*decode_catchup(encode(*m)), *m);
    if (const auto m = decode_config_command(bytes))
      EXPECT_EQ(*decode_config_command(encode(*m)), *m);
  }
}

}  // namespace
}  // namespace twostep::codec
