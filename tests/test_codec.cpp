// Tests for the wire codec: exhaustive round-trips, varint edge cases, and
// a decode fuzzer (malformed input must yield nullopt, never UB).
#include <gtest/gtest.h>

#include "codec/codec.hpp"
#include "util/rng.hpp"

namespace twostep::codec {
namespace {

using consensus::Value;

std::vector<core::Message> sample_messages() {
  return {
      core::Message{core::ProposeMsg{Value{42}}},
      core::Message{core::ProposeMsg{Value{-7}}},
      core::Message{core::OneAMsg{0}},
      core::Message{core::OneAMsg{1'000'000'007}},
      core::Message{core::OneBMsg{5, 0, Value{9}, 3, Value::bottom(), Value{1}}},
      core::Message{core::OneBMsg{7, 7, Value::bottom(), consensus::kNoProcess,
                                  Value{12}, Value::bottom()}},
      core::Message{core::TwoAMsg{3, Value{11}}},
      core::Message{core::TwoBMsg{0, Value{8}}},
      core::Message{core::TwoBMsg{999, Value{-999}}},
      core::Message{core::DecideMsg{Value{123456789}}},
  };
}

TEST(Codec, RoundTripsEveryMessageKind) {
  for (const auto& m : sample_messages()) {
    const auto bytes = encode(m);
    ASSERT_FALSE(bytes.empty());
    const auto back = decode(bytes);
    ASSERT_TRUE(back.has_value()) << core::to_string(m);
    EXPECT_EQ(*back, m) << core::to_string(m);
  }
}

TEST(Codec, VarintExtremes) {
  Writer w;
  const std::int64_t extremes[] = {0, 1, -1, 63, 64, -64, -65,
                                   std::numeric_limits<std::int64_t>::max(),
                                   std::numeric_limits<std::int64_t>::min()};
  for (const std::int64_t v : extremes) w.put_i64(v);
  Reader r{w.bytes()};
  for (const std::int64_t v : extremes) EXPECT_EQ(r.get_i64(), v);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, ValueBottomRoundTrips) {
  Writer w;
  w.put_value(Value::bottom());
  w.put_value(Value{0});
  Reader r{w.bytes()};
  EXPECT_TRUE(r.get_value().is_bottom());
  EXPECT_EQ(r.get_value(), Value{0});
  EXPECT_TRUE(r.ok());
}

TEST(Codec, SmallMessagesAreCompact) {
  // A 2B(0, v) — the hot fast-path message — must be a handful of bytes.
  const auto bytes = encode(core::Message{core::TwoBMsg{0, Value{7}}});
  EXPECT_LE(bytes.size(), 4u);
}

TEST(Codec, RejectsUnknownTag) {
  EXPECT_FALSE(decode(std::vector<std::uint8_t>{0x7F}).has_value());
  EXPECT_FALSE(decode(std::vector<std::uint8_t>{0}).has_value());
}

TEST(Codec, RejectsEmptyAndTruncated) {
  EXPECT_FALSE(decode({}).has_value());
  for (const auto& m : sample_messages()) {
    const auto bytes = encode(m);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      const std::span<const std::uint8_t> prefix{bytes.data(), cut};
      EXPECT_FALSE(decode(prefix).has_value()) << core::to_string(m) << " cut=" << cut;
    }
  }
}

TEST(Codec, RejectsTrailingGarbage) {
  for (const auto& m : sample_messages()) {
    auto bytes = encode(m);
    bytes.push_back(0x00);
    EXPECT_FALSE(decode(bytes).has_value()) << core::to_string(m);
  }
}

TEST(Codec, RejectsOversizeVarint) {
  // 11 continuation bytes: shift overruns 63 and must fail cleanly.
  std::vector<std::uint8_t> bytes{2 /*OneA*/};
  for (int i = 0; i < 11; ++i) bytes.push_back(0x80);
  bytes.push_back(0x01);
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Codec, DecodeFuzzNeverCrashes) {
  util::Rng rng{0xC0DEC};
  int accepted = 0;
  for (int iter = 0; iter < 20000; ++iter) {
    std::vector<std::uint8_t> bytes(rng.next_below(24));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
    const auto m = decode(bytes);
    if (!m) continue;
    ++accepted;
    // Anything accepted must round-trip as a message (the byte form need
    // not be canonical: non-minimal varints are accepted).
    const auto again = decode(encode(*m));
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, *m);
  }
  // Random bytes occasionally form valid messages; that is fine.
  EXPECT_GE(accepted, 0);
}

TEST(Codec, EncodeIsDeterministic) {
  for (const auto& m : sample_messages()) EXPECT_EQ(encode(m), encode(m));
}

}  // namespace
}  // namespace twostep::codec
