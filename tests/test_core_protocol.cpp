// Tests for the paper's protocol (Figure 1): handler-level unit tests via
// MockEnv, plus end-to-end E-faulty synchronous runs, crash/recovery
// integration and partial-synchrony sweeps via the cluster harness.
#include <gtest/gtest.h>

#include <map>

#include "core/two_step.hpp"
#include "mock_env.hpp"
#include "net/latency.hpp"
#include "support.hpp"

namespace twostep::core {
namespace {

using consensus::ProcessId;
using consensus::SyncScenario;
using consensus::SystemConfig;
using consensus::Value;
using testing::RunSpec;
using testing::MockEnv;

constexpr sim::Tick kDelta = 100;

// ---------- handler-level unit tests (MockEnv) ----------

struct Fixture {
  explicit Fixture(SystemConfig cfg, Mode mode = Mode::kTask, ProcessId self = 0)
      : env(self, cfg.n), proc(env, cfg, make_options(mode)) {}

  static Options make_options(Mode mode) {
    Options o;
    o.mode = mode;
    o.delta = kDelta;
    o.enable_ballot_timer = false;  // drive timers manually in unit tests
    return o;
  }

  MockEnv<Message> env;
  TwoStepProcess proc;
};

TEST(TwoStepUnit, ProposeBroadcastsToOthers) {
  Fixture f{SystemConfig{5, 2, 1}};
  f.proc.propose(Value{7});
  EXPECT_EQ(f.env.sent().size(), 4u);  // n-1 Propose messages
  for (const auto& [to, m] : f.env.sent()) {
    ASSERT_TRUE(std::holds_alternative<ProposeMsg>(m));
    EXPECT_EQ(std::get<ProposeMsg>(m).v, Value{7});
    EXPECT_NE(to, 0);
  }
  EXPECT_EQ(f.proc.initial_value(), Value{7});
}

TEST(TwoStepUnit, ProposeIsAtMostOnce) {
  Fixture f{SystemConfig{5, 2, 1}};
  f.proc.propose(Value{7});
  f.env.clear_sent();
  f.proc.propose(Value{8});
  EXPECT_TRUE(f.env.sent().empty());
  EXPECT_EQ(f.proc.initial_value(), Value{7});
}

TEST(TwoStepUnit, ProposeRejectsBottom) {
  Fixture f{SystemConfig{5, 2, 1}};
  EXPECT_THROW(f.proc.propose(Value::bottom()), std::invalid_argument);
}

TEST(TwoStepUnit, AcceptsFirstProposalAndVotes) {
  Fixture f{SystemConfig{5, 2, 1}};
  f.proc.on_message(3, Message{ProposeMsg{Value{9}}});
  EXPECT_EQ(f.proc.vote_value(), Value{9});
  EXPECT_EQ(f.proc.vote_proposer(), 3);
  const auto to3 = f.env.sent_to(3);
  ASSERT_EQ(to3.size(), 1u);
  const auto& vote = std::get<TwoBMsg>(to3.front());
  EXPECT_EQ(vote.b, 0);
  EXPECT_EQ(vote.v, Value{9});
}

TEST(TwoStepUnit, RefusesSecondProposal) {
  Fixture f{SystemConfig{5, 2, 1}};
  f.proc.on_message(3, Message{ProposeMsg{Value{9}}});
  f.env.clear_sent();
  f.proc.on_message(4, Message{ProposeMsg{Value{11}}});  // val != bottom now
  EXPECT_TRUE(f.env.sent().empty());
  EXPECT_EQ(f.proc.vote_value(), Value{9});
}

TEST(TwoStepUnit, RefusesProposalBelowOwn) {
  Fixture f{SystemConfig{5, 2, 1}};
  f.proc.propose(Value{10});
  f.env.clear_sent();
  f.proc.on_message(3, Message{ProposeMsg{Value{9}}});  // 9 < 10
  EXPECT_TRUE(f.env.sent().empty());
  f.proc.on_message(3, Message{ProposeMsg{Value{12}}});  // 12 >= 10: task mode accepts
  EXPECT_EQ(f.env.sent().size(), 1u);
  EXPECT_EQ(f.proc.vote_value(), Value{12});
}

TEST(TwoStepUnit, ObjectModeRefusesDifferentValueAfterProposing) {
  // The red-line condition of Figure 1: initial_val != bottom ==> v == initial_val.
  Fixture f{SystemConfig{5, 2, 2}, Mode::kObject};
  f.proc.propose(Value{10});
  f.env.clear_sent();
  f.proc.on_message(3, Message{ProposeMsg{Value{12}}});  // >= own but different
  EXPECT_TRUE(f.env.sent().empty());
  f.proc.on_message(4, Message{ProposeMsg{Value{10}}});  // equal: accepted
  EXPECT_EQ(f.proc.vote_value(), Value{10});
  EXPECT_EQ(f.proc.vote_proposer(), 4);
}

TEST(TwoStepUnit, RefusesProposalAfterJoiningSlowBallot) {
  Fixture f{SystemConfig{5, 2, 1}};
  f.proc.on_message(1, Message{OneAMsg{6}});  // joins ballot 6
  f.env.clear_sent();
  f.proc.on_message(3, Message{ProposeMsg{Value{9}}});
  EXPECT_TRUE(f.env.sent().empty());  // bal != 0 blocks the fast path
}

TEST(TwoStepUnit, FastDecisionAtQuorum) {
  // n=5, e=1: fast quorum 4 = proposer + 3 votes.
  Fixture f{SystemConfig{5, 2, 1}};
  Value decided;
  f.proc.on_decide = [&](Value v) { decided = v; };
  f.proc.propose(Value{7});
  f.proc.on_message(1, Message{TwoBMsg{0, Value{7}}});
  f.proc.on_message(2, Message{TwoBMsg{0, Value{7}}});
  EXPECT_FALSE(f.proc.has_decided());
  f.proc.on_message(3, Message{TwoBMsg{0, Value{7}}});
  EXPECT_TRUE(f.proc.has_decided());
  EXPECT_EQ(decided, Value{7});
  // Decide is disseminated to the other n-1 processes.
  EXPECT_EQ(f.env.count_sent([](ProcessId, const Message& m) {
              return std::holds_alternative<DecideMsg>(m);
            }),
            4);
}

TEST(TwoStepUnit, DuplicateFastVotesDoNotDoubleCount) {
  Fixture f{SystemConfig{5, 2, 1}};
  f.proc.propose(Value{7});
  for (int i = 0; i < 5; ++i) f.proc.on_message(1, Message{TwoBMsg{0, Value{7}}});
  EXPECT_FALSE(f.proc.has_decided());
}

TEST(TwoStepUnit, StaleFastVoteForForeignValueIgnored) {
  Fixture f{SystemConfig{5, 2, 1}};
  f.proc.propose(Value{7});
  f.proc.on_message(1, Message{TwoBMsg{0, Value{8}}});  // not our proposal
  f.proc.on_message(2, Message{TwoBMsg{0, Value{7}}});
  f.proc.on_message(3, Message{TwoBMsg{0, Value{7}}});
  EXPECT_FALSE(f.proc.has_decided());
}

TEST(TwoStepUnit, ConflictingOwnVoteBlocksFastDecision) {
  // We proposed 7 but voted for a higher proposal 9: val not in {bottom, 7}.
  Fixture f{SystemConfig{5, 2, 1}};
  f.proc.propose(Value{7});
  f.proc.on_message(4, Message{ProposeMsg{Value{9}}});
  for (ProcessId q : {1, 2, 3}) f.proc.on_message(q, Message{TwoBMsg{0, Value{7}}});
  EXPECT_FALSE(f.proc.has_decided());
}

TEST(TwoStepUnit, OneAMovesBallotAndAnswersOneB) {
  Fixture f{SystemConfig{5, 2, 1}};
  f.proc.on_message(3, Message{ProposeMsg{Value{9}}});
  f.env.clear_sent();
  f.proc.on_message(1, Message{OneAMsg{6}});
  EXPECT_EQ(f.proc.ballot(), 6);
  const auto to1 = f.env.sent_to(1);
  ASSERT_EQ(to1.size(), 1u);
  const auto& ob = std::get<OneBMsg>(to1.front());
  EXPECT_EQ(ob.b, 6);
  EXPECT_EQ(ob.vbal, 0);
  EXPECT_EQ(ob.val, Value{9});
  EXPECT_EQ(ob.proposer, 3);
  EXPECT_TRUE(ob.decided.is_bottom());
}

TEST(TwoStepUnit, StaleOneAIgnored) {
  Fixture f{SystemConfig{5, 2, 1}};
  f.proc.on_message(1, Message{OneAMsg{6}});
  f.env.clear_sent();
  f.proc.on_message(2, Message{OneAMsg{6}});  // same ballot: b <= bal
  f.proc.on_message(2, Message{OneAMsg{3}});  // lower
  EXPECT_TRUE(f.env.sent().empty());
  EXPECT_EQ(f.proc.ballot(), 6);
}

TEST(TwoStepUnit, TwoAVotesAndBumpsBallot) {
  Fixture f{SystemConfig{5, 2, 1}};
  f.proc.on_message(1, Message{TwoAMsg{6, Value{4}}});
  EXPECT_EQ(f.proc.ballot(), 6);
  EXPECT_EQ(f.proc.vote_ballot(), 6);
  EXPECT_EQ(f.proc.vote_value(), Value{4});
  const auto to1 = f.env.sent_to(1);
  ASSERT_EQ(to1.size(), 1u);
  EXPECT_EQ(std::get<TwoBMsg>(to1.front()).b, 6);
}

TEST(TwoStepUnit, StaleTwoAIgnored) {
  Fixture f{SystemConfig{5, 2, 1}};
  f.proc.on_message(1, Message{OneAMsg{8}});
  f.env.clear_sent();
  f.proc.on_message(1, Message{TwoAMsg{6, Value{4}}});  // 6 < bal = 8
  EXPECT_TRUE(f.env.sent().empty());
  EXPECT_TRUE(f.proc.vote_value().is_bottom());
}

TEST(TwoStepUnit, LeaderAggregatesExactQuorumAndSends2A) {
  // p0 leads ballot 5 (5 mod 5 == 0) in a n=5, f=2 system: quorum 3.
  Fixture f{SystemConfig{5, 2, 1}};
  f.proc.propose(Value{3});
  f.env.clear_sent();
  f.proc.on_message(1, Message{OneBMsg{5, 0, Value::bottom(), consensus::kNoProcess, {}, {}}});
  f.proc.on_message(2, Message{OneBMsg{5, 0, Value::bottom(), consensus::kNoProcess, {}, {}}});
  EXPECT_TRUE(f.env.sent().empty());  // only 2 of 3
  f.proc.on_message(3, Message{OneBMsg{5, 0, Value::bottom(), consensus::kNoProcess, {}, {}}});
  // Own initial selected; 2A broadcast to all n processes.
  EXPECT_EQ(f.env.count_sent([](ProcessId, const Message& m) {
              return std::holds_alternative<TwoAMsg>(m) && std::get<TwoAMsg>(m).v == Value{3};
            }),
            5);
}

TEST(TwoStepUnit, NonOwnedBallotOneBIgnored) {
  Fixture f{SystemConfig{5, 2, 1}};  // self = 0; ballot 6 is owned by p1
  for (ProcessId q : {1, 2, 3}) {
    f.proc.on_message(q, Message{OneBMsg{6, 0, Value::bottom(), consensus::kNoProcess, {}, {}}});
  }
  EXPECT_TRUE(f.env.sent().empty());
}

TEST(TwoStepUnit, SlowDecisionAtClassicQuorum) {
  Fixture f{SystemConfig{5, 2, 1}};
  f.proc.propose(Value{3});
  for (ProcessId q : {1, 2, 3}) {
    f.proc.on_message(q, Message{OneBMsg{5, 0, Value::bottom(), consensus::kNoProcess, {}, {}}});
  }
  // 2A(5,3) went out; now collect 2B votes (incl. our own self-delivery,
  // which MockEnv does not loop back, so feed 3 votes from others).
  f.proc.on_message(1, Message{TwoBMsg{5, Value{3}}});
  f.proc.on_message(2, Message{TwoBMsg{5, Value{3}}});
  EXPECT_FALSE(f.proc.has_decided());
  f.proc.on_message(3, Message{TwoBMsg{5, Value{3}}});
  EXPECT_TRUE(f.proc.has_decided());
  EXPECT_EQ(f.proc.decided_value(), Value{3});
}

TEST(TwoStepUnit, DecideMessageAdoptsDecision) {
  Fixture f{SystemConfig{5, 2, 1}};
  Value decided;
  f.proc.on_decide = [&](Value v) { decided = v; };
  f.proc.on_message(2, Message{DecideMsg{Value{13}}});
  EXPECT_TRUE(f.proc.has_decided());
  EXPECT_EQ(decided, Value{13});
  EXPECT_EQ(f.proc.vote_value(), Value{13});  // line 14: val <- v
}

TEST(TwoStepUnit, OneBAfterDecisionCarriesDecided) {
  Fixture f{SystemConfig{5, 2, 1}};
  f.proc.on_message(2, Message{DecideMsg{Value{13}}});
  f.env.clear_sent();
  f.proc.on_message(1, Message{OneAMsg{6}});
  const auto to1 = f.env.sent_to(1);
  ASSERT_EQ(to1.size(), 1u);
  EXPECT_EQ(std::get<OneBMsg>(to1.front()).decided, Value{13});
}

TEST(TwoStepUnit, OnDecideFiresExactlyOnce) {
  Fixture f{SystemConfig{5, 2, 1}};
  int fired = 0;
  f.proc.on_decide = [&](Value) { ++fired; };
  f.proc.on_message(2, Message{DecideMsg{Value{13}}});
  f.proc.on_message(3, Message{DecideMsg{Value{13}}});
  EXPECT_EQ(fired, 1);
}

// ---------- end-to-end synchronous runs ----------

TEST(TwoStepRun, FailureFreeFastPathDecidesAtTwoDelta) {
  const SystemConfig cfg{5, 2, 1};
  auto r = RunSpec(cfg).delta(kDelta).core(Mode::kTask);
  SyncScenario s;
  s.proposals = {{4, Value{40}}, {0, Value{10}}, {1, Value{20}}, {2, Value{30}}, {3, Value{35}}};
  r->run(s);
  // p4 proposed the maximum with top priority: it decides at exactly 2Δ.
  EXPECT_TRUE(r->monitor().two_step_for(4, kDelta));
  EXPECT_EQ(r->monitor().decision(4), Value{40});
  // Everyone is correct and decides; the run is safe.
  EXPECT_TRUE(r->monitor().safe());
  EXPECT_TRUE(r->monitor().undecided_correct(cfg.n).empty());
  EXPECT_EQ(r->monitor().any_decision(), Value{40});
}

TEST(TwoStepRun, ECrashesStillTwoStepAtTaskBound) {
  // e=2, f=2: task bound n = max{2e+f, 2f+1} = 6.
  const SystemConfig cfg{6, 2, 2};
  auto r = RunSpec(cfg).delta(kDelta).core(Mode::kTask);
  SyncScenario s;
  s.crashes = {0, 1};
  s.proposals = {{5, Value{50}}, {0, Value{99}}, {1, Value{98}},
                 {2, Value{20}}, {3, Value{30}}, {4, Value{40}}};
  r->run(s);
  EXPECT_TRUE(r->monitor().two_step_for(5, kDelta));
  EXPECT_EQ(r->monitor().any_decision(), Value{50});
  EXPECT_TRUE(r->monitor().safe());
  EXPECT_TRUE(r->monitor().undecided_correct(cfg.n).empty());
}

TEST(TwoStepRun, SameValueEveryProcessCanBeTwoStep) {
  const SystemConfig cfg{5, 2, 1};
  for (ProcessId p = 0; p < cfg.n; ++p) {
    auto r = RunSpec(cfg).delta(kDelta).core(Mode::kTask);
    std::map<ProcessId, Value> initial;
    for (ProcessId q = 0; q < cfg.n; ++q) initial[q] = Value{42};
    SyncScenario s;
    s.proposals = consensus::priority_order(initial, p);
    r->run(s);
    EXPECT_TRUE(r->monitor().two_step_for(p, kDelta)) << "p" << p;
    EXPECT_TRUE(r->monitor().safe());
  }
}

TEST(TwoStepRun, CrashedFastProposerValueRecoveredBySlowPath) {
  // p2 proposes the maximum and crashes right after its broadcast; the
  // others voted for 9, so the ballot-recovery (threshold branch) must
  // re-propose 9 and everyone decides it.
  const SystemConfig cfg{3, 1, 1};
  auto r = RunSpec(cfg).delta(kDelta).core(Mode::kTask);
  r->cluster().start_all();
  r->cluster().propose(2, Value{9});
  r->cluster().crash(2);  // after broadcasting, at time 0
  r->cluster().propose(0, Value{1});
  r->cluster().propose(1, Value{2});
  r->cluster().run();
  EXPECT_TRUE(r->monitor().safe());
  EXPECT_EQ(r->monitor().decision(0), Value{9});
  EXPECT_EQ(r->monitor().decision(1), Value{9});
  // Not two-step: the decision needed the slow path.
  EXPECT_FALSE(r->monitor().two_step_for(0, kDelta));
}

TEST(TwoStepRun, ObjectModeSlowPathAfterConflict) {
  // Object bound for e=2, f=2 is n = 5.  Two proposers conflict; two
  // processes crash; no fast quorum forms and the slow path must finish.
  const SystemConfig cfg{5, 2, 2};
  auto r = RunSpec(cfg).delta(kDelta).core(Mode::kObject);
  SyncScenario s;
  s.crashes = {3, 4};
  s.proposals = {{0, Value{10}}, {1, Value{20}}};
  r->run(s);
  EXPECT_TRUE(r->monitor().safe());
  EXPECT_TRUE(r->monitor().undecided_correct(cfg.n).empty());
  const Value v = r->monitor().any_decision().value();
  EXPECT_TRUE(v == Value{10} || v == Value{20});
  EXPECT_FALSE(r->monitor().two_step_for(0, kDelta));
}

TEST(TwoStepRun, NonProposersLearnTheDecisionInObjectMode) {
  const SystemConfig cfg{5, 2, 2};
  auto r = RunSpec(cfg).delta(kDelta).core(Mode::kObject);
  SyncScenario s;
  s.proposals = {{2, Value{77}}};  // only p2 proposes
  r->run(s);
  EXPECT_TRUE(r->monitor().two_step_for(2, kDelta));
  for (ProcessId p = 0; p < cfg.n; ++p) EXPECT_EQ(r->monitor().decision(p), Value{77});
}

TEST(TwoStepRun, LeaderCrashFailoverViaOmega) {
  // p0 (initial Ω leader) is crashed; p1 must take over ballots.
  const SystemConfig cfg{5, 2, 2};
  auto r = RunSpec(cfg).delta(kDelta).core(Mode::kObject);
  SyncScenario s;
  s.crashes = {0, 3};
  s.proposals = {{1, Value{10}}, {2, Value{20}}};
  r->run(s);
  EXPECT_TRUE(r->monitor().safe());
  EXPECT_TRUE(r->monitor().undecided_correct(cfg.n).empty());
}

TEST(TwoStepRun, QuiescenceAfterDecision) {
  // After everyone decides, timers unwind and the simulation reaches
  // quiescence (no livelock of ballot timers).
  const SystemConfig cfg{5, 2, 1};
  auto r = RunSpec(cfg).delta(kDelta).core(Mode::kTask);
  SyncScenario s;
  s.proposals = {{0, Value{1}}, {1, Value{2}}, {2, Value{3}}, {3, Value{4}}, {4, Value{5}}};
  r->run(s);
  EXPECT_EQ(r->cluster().simulator().pending(), 0u);
}

// ---------- partial synchrony sweeps ----------

class TwoStepPartialSynchrony : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TwoStepPartialSynchrony, TaskSafeAndLiveAcrossSeeds) {
  const SystemConfig cfg{6, 2, 2};
  const std::uint64_t seed = GetParam();
  auto model = std::make_unique<net::PartialSynchrony>(/*gst=*/1500, /*delta=*/kDelta,
                                                       /*chaos=*/1200);
  auto r = RunSpec(cfg).model(std::move(model)).seed(seed).core(Mode::kTask);
  SyncScenario s;
  // Crash one process mid-flight for extra adversity.
  s.proposals = {{0, Value{10}}, {1, Value{20}}, {2, Value{30}},
                 {3, Value{40}}, {4, Value{50}}, {5, Value{60}}};
  r->cluster().crash_at(250, 3);
  r->run(s);
  EXPECT_TRUE(r->monitor().safe()) << r->monitor().violations().front();
  EXPECT_TRUE(r->cluster().all_correct_decided());
}

TEST_P(TwoStepPartialSynchrony, ObjectSafeAndLiveAcrossSeeds) {
  const SystemConfig cfg{5, 2, 2};
  const std::uint64_t seed = GetParam();
  auto model = std::make_unique<net::PartialSynchrony>(1500, kDelta, 1200);
  auto r = RunSpec(cfg).model(std::move(model)).seed(seed).core(Mode::kObject);
  SyncScenario s;
  s.proposals = {{0, Value{10}}, {2, Value{30}}, {4, Value{50}}};
  r->cluster().crash_at(180, 0);
  r->run(s);
  EXPECT_TRUE(r->monitor().safe()) << r->monitor().violations().front();
  EXPECT_TRUE(r->cluster().all_correct_decided());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoStepPartialSynchrony,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace twostep::core
