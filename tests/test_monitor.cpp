// Unit tests for the external run monitors: the consensus task checker and
// the object linearizability checker.
#include <gtest/gtest.h>

#include "consensus/monitor.hpp"

namespace twostep::consensus {
namespace {

TEST(ConsensusMonitor, CleanRunIsSafe) {
  ConsensusMonitor m;
  m.note_proposal(0, Value{1}, 0);
  m.note_proposal(1, Value{2}, 0);
  m.note_decision(0, Value{2}, 200);
  m.note_decision(1, Value{2}, 300);
  EXPECT_TRUE(m.safe());
  EXPECT_EQ(m.decided_count(), 2);
  EXPECT_EQ(m.any_decision(), Value{2});
}

TEST(ConsensusMonitor, DetectsAgreementViolation) {
  ConsensusMonitor m;
  m.note_proposal(0, Value{1}, 0);
  m.note_proposal(1, Value{2}, 0);
  m.note_decision(0, Value{1}, 100);
  m.note_decision(1, Value{2}, 100);
  ASSERT_FALSE(m.safe());
  EXPECT_NE(m.violations().front().find("agreement"), std::string::npos);
}

TEST(ConsensusMonitor, DetectsValidityViolation) {
  ConsensusMonitor m;
  m.note_proposal(0, Value{1}, 0);
  m.note_decision(0, Value{99}, 100);
  ASSERT_FALSE(m.safe());
  EXPECT_NE(m.violations().front().find("validity"), std::string::npos);
}

TEST(ConsensusMonitor, DetectsIntegrityViolation) {
  ConsensusMonitor m;
  m.note_proposal(0, Value{1}, 0);
  m.note_proposal(1, Value{2}, 0);
  m.note_decision(0, Value{1}, 100);
  m.note_decision(0, Value{2}, 150);
  ASSERT_FALSE(m.safe());
  EXPECT_NE(m.violations().front().find("integrity"), std::string::npos);
}

TEST(ConsensusMonitor, RedecidingSameValueIsBenign) {
  ConsensusMonitor m;
  m.note_proposal(0, Value{1}, 0);
  m.note_decision(0, Value{1}, 100);
  m.note_decision(0, Value{1}, 200);
  EXPECT_TRUE(m.safe());
  EXPECT_EQ(m.decision_time(0), 100);  // first decision time sticks
}

TEST(ConsensusMonitor, RejectsBottomProposal) {
  ConsensusMonitor m;
  m.note_proposal(0, Value::bottom(), 0);
  EXPECT_FALSE(m.safe());
}

TEST(ConsensusMonitor, ConflictingReproposalFlagged) {
  ConsensusMonitor m;
  m.note_proposal(0, Value{1}, 0);
  m.note_proposal(0, Value{2}, 10);
  EXPECT_FALSE(m.safe());
}

TEST(ConsensusMonitor, TwoStepVerdictUsesTwoDelta) {
  ConsensusMonitor m;
  m.note_proposal(0, Value{1}, 0);
  m.note_decision(0, Value{1}, 200);
  EXPECT_TRUE(m.two_step_for(0, 100));   // 200 <= 2*100
  EXPECT_FALSE(m.two_step_for(0, 99));   // 200 > 198
  EXPECT_FALSE(m.two_step_for(1, 100));  // never decided
}

TEST(ConsensusMonitor, UndecidedCorrectExcludesCrashedAndDecided) {
  ConsensusMonitor m;
  m.note_proposal(0, Value{1}, 0);
  m.note_decision(0, Value{1}, 100);
  m.note_crash(2, 50);
  const auto undecided = m.undecided_correct(3);
  ASSERT_EQ(undecided.size(), 1u);
  EXPECT_EQ(undecided.front(), 1);
}

TEST(ConsensusMonitor, ResetClearsEverything) {
  ConsensusMonitor m;
  m.note_proposal(0, Value{1}, 0);
  m.note_decision(0, Value{9}, 100);  // validity violation
  EXPECT_FALSE(m.safe());
  m.reset();
  EXPECT_TRUE(m.safe());
  EXPECT_EQ(m.decided_count(), 0);
}

TEST(Linearizability, EmptyHistoryIsLinearizable) {
  ObjectLinearizabilityChecker c;
  EXPECT_TRUE(c.check().empty());
}

TEST(Linearizability, SingleProposerIsLinearizable) {
  ObjectLinearizabilityChecker c;
  c.note_invocation(0, Value{5}, 0);
  c.note_response(0, Value{5}, 200);
  EXPECT_TRUE(c.check().empty());
}

TEST(Linearizability, ConcurrentProposersOneWinner) {
  ObjectLinearizabilityChecker c;
  c.note_invocation(0, Value{5}, 0);
  c.note_invocation(1, Value{6}, 0);
  c.note_response(0, Value{6}, 200);
  c.note_response(1, Value{6}, 250);
  EXPECT_TRUE(c.check().empty());
}

TEST(Linearizability, DisagreeingResponsesFlagged) {
  ObjectLinearizabilityChecker c;
  c.note_invocation(0, Value{5}, 0);
  c.note_invocation(1, Value{6}, 0);
  c.note_response(0, Value{5}, 200);
  c.note_response(1, Value{6}, 200);
  EXPECT_FALSE(c.check().empty());
}

TEST(Linearizability, DecisionMustBeInvokedBeforeFirstResponse) {
  ObjectLinearizabilityChecker c;
  // Value 6 is only proposed AFTER process 0 already returned it: the
  // returned value came out of thin air at response time.
  c.note_invocation(0, Value{5}, 0);
  c.note_response(0, Value{6}, 100);
  c.note_invocation(1, Value{6}, 200);
  c.note_response(1, Value{6}, 300);
  EXPECT_FALSE(c.check().empty());
}

TEST(Linearizability, ResponseWithoutInvocationFlagged) {
  ObjectLinearizabilityChecker c;
  c.note_invocation(0, Value{5}, 0);
  c.note_response(0, Value{5}, 100);
  c.note_response(1, Value{5}, 150);  // p1 never invoked propose
  EXPECT_FALSE(c.check().empty());
}

}  // namespace
}  // namespace twostep::consensus
