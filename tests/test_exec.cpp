// Tests for the exec subsystem: the work-stealing thread pool and the
// deterministic parallel_sweep harness.  The load-bearing property is the
// determinism contract — results (including early-stopped sweeps) must be
// byte-identical for any jobs count — so most tests compare a parallel run
// against the jobs=1 inline reference.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/parallel_sweep.hpp"
#include "exec/thread_pool.hpp"
#include "util/rng.hpp"

namespace twostep::exec {
namespace {

TEST(ThreadPool, ResolveJobsClampsToHardware) {
  EXPECT_GE(resolve_jobs(0), 1);
  EXPECT_GE(resolve_jobs(-3), 1);
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_EQ(resolve_jobs(7), 7);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool{4};
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 200; ++i)
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool{2};
  std::atomic<int> ran{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 50; ++i)
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    pool.wait_idle();
    EXPECT_EQ(ran.load(), 50 * (round + 1));
  }
}

TEST(ThreadPool, WaitIdleWithNothingSubmittedReturnsImmediately) {
  ThreadPool pool{2};
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool{2};
    for (int i = 0; i < 100; ++i)
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }  // ~ThreadPool joins after draining
  EXPECT_EQ(ran.load(), 100);
}

// ---------- splitmix64 seed derivation ----------

TEST(ParallelSweep, DerivedSeedsAreStableAndDistinct) {
  // The per-task seed is a pure function of (base, index) — the whole
  // determinism story rests on this.
  EXPECT_EQ(util::splitmix64(1, 0), util::splitmix64(1, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t base = 1; base <= 4; ++base)
    for (std::uint64_t i = 0; i < 64; ++i) seen.insert(util::splitmix64(base, i));
  EXPECT_EQ(seen.size(), 4u * 64u);  // no collisions across adjacent indices/bases
}

// ---------- FirstHit ----------

TEST(FirstHit, KeepsTheLowestRecordedIndex) {
  FirstHit hit;
  EXPECT_FALSE(hit.index().has_value());
  hit.record(7);
  hit.record(3);
  hit.record(5);
  ASSERT_TRUE(hit.index().has_value());
  EXPECT_EQ(*hit.index(), 3u);
}

TEST(FirstHit, ObsoleteRequiresStrictlyLowerHit) {
  FirstHit hit;
  EXPECT_FALSE(hit.obsolete(0));
  hit.record(3);
  EXPECT_FALSE(hit.obsolete(2));  // lower shards keep running...
  EXPECT_FALSE(hit.obsolete(3));  // ...and so does the winner itself
  EXPECT_TRUE(hit.obsolete(4));   // only strictly higher shards may stop
}

// ---------- parallel_sweep ----------

TEST(ParallelSweep, ReturnsResultsInIndexOrder) {
  SweepOptions options;
  options.jobs = 4;
  const auto results = parallel_sweep<std::size_t>(
      100, [](const SweepTask& task) { return task.index * 2; }, options);
  ASSERT_EQ(results.size(), 100u);
  for (std::size_t i = 0; i < results.size(); ++i) EXPECT_EQ(results[i], i * 2);
}

TEST(ParallelSweep, EmptySweepReturnsEmpty) {
  EXPECT_TRUE(parallel_sweep<int>(0, [](const SweepTask&) { return 1; }).empty());
}

TEST(ParallelSweep, SeedsMatchTheInlineReference) {
  // Each task consumes its private RNG; the drawn values must not depend on
  // the jobs count.
  auto draw = [](int jobs) {
    SweepOptions options;
    options.jobs = jobs;
    options.base_seed = 42;
    return parallel_sweep<std::uint64_t>(
        64,
        [](const SweepTask& task) {
          util::Rng rng{task.seed};
          std::uint64_t acc = 0;
          for (int i = 0; i < 100; ++i) acc ^= rng();
          return acc;
        },
        options);
  };
  EXPECT_EQ(draw(1), draw(8));
}

TEST(ParallelSweep, RethrowsLowestIndexExceptionAfterJoin) {
  SweepOptions options;
  options.jobs = 4;
  try {
    parallel_sweep<int>(
        32,
        [](const SweepTask& task) {
          if (task.index == 9 || task.index == 20)
            throw std::runtime_error("task " + std::to_string(task.index));
          return 0;
        },
        options);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& err) {
    EXPECT_STREQ(err.what(), "task 9");  // lowest index wins deterministically
  }
}

TEST(ParallelSweep, EarlyStopViaFirstHitStaysDeterministic) {
  // Simulates the fuzzer's shape: every task can "hit"; the winner must be
  // the lowest hitting index for any jobs count, and tasks below the winner
  // must have run to completion.
  auto run = [](int jobs) {
    FirstHit hit;
    SweepOptions options;
    options.jobs = jobs;
    struct Part {
      bool hit = false;
      int work = 0;
    };
    auto parts = parallel_sweep<Part>(
        40,
        [&hit](const SweepTask& task) {
          Part part;
          for (int step = 0; step < 50; ++step) {
            if (hit.obsolete(task.index)) return part;
            ++part.work;
            if (step == 49 && task.index % 5 == 2) {  // indices 2, 7, 12, ... hit
              part.hit = true;
              hit.record(task.index);
              return part;
            }
          }
          return part;
        },
        options);
    // Reduce exactly as the fuzzer does: stop at the first hitting shard.
    int total_work = 0;
    std::size_t winner = parts.size();
    for (std::size_t i = 0; i < parts.size(); ++i) {
      total_work += parts[i].work;
      if (parts[i].hit) {
        winner = i;
        break;
      }
    }
    return std::pair<std::size_t, int>{winner, total_work};
  };
  const auto inline_run = run(1);
  EXPECT_EQ(inline_run.first, 2u);
  EXPECT_EQ(run(8), inline_run);
  EXPECT_EQ(run(3), inline_run);
}

}  // namespace
}  // namespace twostep::exec
